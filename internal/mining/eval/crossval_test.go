package eval

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"edem/internal/dataset"
	"edem/internal/mining"
	"edem/internal/parallel"
	"edem/internal/stats"
)

// stubLearner memorises nothing: it predicts the training majority. The
// call counter is atomic because folds are fitted concurrently.
type stubLearner struct{ fitCalls *atomic.Int64 }

func (s stubLearner) Name() string { return "stub" }

func (s stubLearner) Fit(d *dataset.Dataset) (mining.Classifier, error) {
	if s.fitCalls != nil {
		s.fitCalls.Add(1)
	}
	return stubClassifier(d.MajorityClass()), nil
}

type stubClassifier int

func (c stubClassifier) Classify([]float64) int { return int(c) }

// perfectLearner returns a classifier implementing the generating rule.
type perfectLearner struct{}

func (perfectLearner) Name() string { return "perfect" }

func (perfectLearner) Fit(*dataset.Dataset) (mining.Classifier, error) {
	return classifierFunc(func(v []float64) int {
		if v[0] > 0.5 {
			return 1
		}
		return 0
	}), nil
}

type classifierFunc func([]float64) int

func (f classifierFunc) Classify(v []float64) int { return f(v) }

func cvDataset(n int, seed uint64) *dataset.Dataset {
	d := dataset.New("cv", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"neg", "pos"})
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		x := rng.Float64()
		class := 0
		if x > 0.5 {
			class = 1
		}
		d.MustAdd(dataset.Instance{Values: []float64{x}, Class: class, Weight: 1})
	}
	return d
}

func TestCrossValidatePerfect(t *testing.T) {
	d := cvDataset(200, 1)
	res, err := CrossValidate(context.Background(), perfectLearner{}, d, CVConfig{Folds: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanTPR != 1 || res.MeanFPR != 0 || res.MeanAUC != 1 {
		t.Fatalf("perfect learner: TPR=%v FPR=%v AUC=%v", res.MeanTPR, res.MeanFPR, res.MeanAUC)
	}
	if res.VarAUC != 0 {
		t.Fatalf("perfect learner variance = %v", res.VarAUC)
	}
	if len(res.Folds) != 10 {
		t.Fatalf("folds = %d", len(res.Folds))
	}
	if res.Pooled.Total() != 200 {
		t.Fatalf("pooled total = %v", res.Pooled.Total())
	}
}

func TestCrossValidateFitsOncePerFold(t *testing.T) {
	d := cvDataset(100, 2)
	var calls atomic.Int64
	_, err := CrossValidate(context.Background(), stubLearner{fitCalls: &calls}, d, CVConfig{Folds: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 5 {
		t.Fatalf("fit called %d times, want 5", calls.Load())
	}
}

func TestCrossValidateDefaults(t *testing.T) {
	d := cvDataset(100, 3)
	res, err := CrossValidate(context.Background(), stubLearner{}, d, CVConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Folds) != 10 {
		t.Fatalf("default folds = %d, want 10", len(res.Folds))
	}
	// A constant-majority stub is an uninformative classifier: both
	// rates coincide and the trapezoid AUC sits at 0.5.
	if res.MeanTPR != res.MeanFPR || res.MeanAUC != 0.5 {
		t.Fatalf("stub metrics: TPR=%v FPR=%v AUC=%v", res.MeanTPR, res.MeanFPR, res.MeanAUC)
	}
}

func TestCrossValidateTransformAppliedToTrainOnly(t *testing.T) {
	d := cvDataset(100, 4)
	var mu sync.Mutex
	var trainSizes []int
	tf := func(train *dataset.Dataset, _ *stats.RNG) (*dataset.Dataset, error) {
		mu.Lock()
		trainSizes = append(trainSizes, train.Len())
		mu.Unlock()
		// Duplicate the training set; the test partition must stay at
		// its natural size, keeping the pooled total invariant.
		out := train.Clone()
		for i := range train.Instances {
			out.Instances = append(out.Instances, train.Instances[i].Clone())
		}
		return out, nil
	}
	res, err := CrossValidate(context.Background(), stubLearner{}, d, CVConfig{Folds: 10, Seed: 1, Transform: tf})
	if err != nil {
		t.Fatal(err)
	}
	if len(trainSizes) != 10 {
		t.Fatalf("transform called %d times", len(trainSizes))
	}
	if res.Pooled.Total() != 100 {
		t.Fatalf("pooled total = %v, want 100 (transform must not touch test folds)", res.Pooled.Total())
	}
}

func TestCrossValidateTransformError(t *testing.T) {
	d := cvDataset(50, 5)
	wantErr := errors.New("boom")
	tf := func(*dataset.Dataset, *stats.RNG) (*dataset.Dataset, error) { return nil, wantErr }
	if _, err := CrossValidate(context.Background(), stubLearner{}, d, CVConfig{Folds: 5, Transform: tf}); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
}

func TestCrossValidateDeterminism(t *testing.T) {
	d := cvDataset(120, 6)
	r1, err := CrossValidate(context.Background(), perfectLearner{}, d, CVConfig{Folds: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CrossValidate(context.Background(), perfectLearner{}, d, CVConfig{Folds: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r1.MeanAUC != r2.MeanAUC || r1.MeanComp != r2.MeanComp {
		t.Fatal("same-seed cross-validations differ")
	}
}

// TestCrossValidateWorkerCountInvariant pins the scheduler contract:
// serial and parallel evaluation produce bit-identical results, because
// transform RNGs are forked in fold order before dispatch and all
// aggregation stays serial. The transform consumes fold randomness so a
// fork-order bug would change the outcome.
func TestCrossValidateWorkerCountInvariant(t *testing.T) {
	parallel.SetBudget(8)
	defer parallel.SetBudget(0)
	tf := func(train *dataset.Dataset, rng *stats.RNG) (*dataset.Dataset, error) {
		// Randomly drop ~20% of the training instances.
		out := train.Clone()
		out.Instances = out.Instances[:0]
		for i := range train.Instances {
			if rng.Float64() < 0.8 {
				out.Instances = append(out.Instances, train.Instances[i].Clone())
			}
		}
		return out, nil
	}
	for _, seed := range []uint64{3, 11} {
		d := cvDataset(150, seed)
		serial, err := CrossValidate(context.Background(), perfectLearner{}, d, CVConfig{Folds: 8, Seed: seed, Transform: tf, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := CrossValidate(context.Background(), perfectLearner{}, d, CVConfig{Folds: 8, Seed: seed, Transform: tf, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("seed %d: Workers=1 and Workers=8 results differ", seed)
		}
	}
}

func TestEvaluateHoldout(t *testing.T) {
	train := cvDataset(100, 7)
	test := cvDataset(50, 8)
	cm, err := Evaluate(perfectLearner{}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	b := cm.Binary(1)
	if b.TPR() != 1 || b.FPR() != 0 {
		t.Fatalf("holdout metrics: %+v", b)
	}
}
