package eval

import (
	"context"
	"reflect"
	"testing"

	"edem/internal/dataset"
	"edem/internal/mining"
	"edem/internal/mining/sampling"
	"edem/internal/mining/tree"
	"edem/internal/stats"
)

// instanceOnly strips the ViewFitter refinement off a learner, forcing
// CrossValidate down the instance-based path — the oracle the columnar
// path is compared against.
type instanceOnly struct{ l tree.Learner }

func (w instanceOnly) Name() string { return w.l.Name() }
func (w instanceOnly) Fit(d *dataset.Dataset) (mining.Classifier, error) { return w.l.Fit(d) }

func viewCVDataset(n int, seed uint64) *dataset.Dataset {
	d := dataset.New("view-cv", []dataset.Attribute{
		dataset.NumericAttr("x"),
		dataset.NumericAttr("y"),
	}, []string{"ok", "fail"})
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		x, y := rng.Float64(), rng.Float64()
		class := 0
		if x > 0.75 {
			class = 1
		}
		d.MustAdd(dataset.Instance{Values: []float64{x, y}, Class: class, Weight: 1})
	}
	return d
}

// The columnar fold path (store + identity view + FitView) must yield
// the same folds, models and metrics as the instance path.
func TestCrossValidateViewPathMatchesInstancePath(t *testing.T) {
	d := viewCVDataset(300, 41)
	cfg := CVConfig{Folds: 10, Seed: 41}
	want, err := CrossValidate(context.Background(), instanceOnly{}, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CrossValidate(context.Background(), tree.Learner{}, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("view path diverges from instance path")
	}
}

// With both transform forms set, a ViewFitter learner takes the
// columnar path; results must match the instance path driven by the
// dataset transform, at every worker count (same forked RNG streams).
func TestCrossValidateViewTransformMatchesTransform(t *testing.T) {
	d := viewCVDataset(300, 43)
	tf := func(td *dataset.Dataset, rng *stats.RNG) (*dataset.Dataset, error) {
		return sampling.SMOTE(td, 1, 250, 3, rng)
	}
	vtf := func(st *dataset.Store, rng *stats.RNG) (*dataset.View, error) {
		return sampling.SMOTEView(st, 1, 250, 3, rng)
	}
	want, err := CrossValidate(context.Background(), instanceOnly{}, d,
		CVConfig{Folds: 10, Seed: 43, Transform: tf})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		got, err := CrossValidate(context.Background(), tree.Learner{}, d,
			CVConfig{Folds: 10, Seed: 43, Transform: tf, ViewTransform: vtf, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: view transform diverges from dataset transform", workers)
		}
	}
}

// A ViewFitter learner with only a dataset Transform configured must
// stay on the instance path (the transform has no view form to use).
func TestCrossValidateTransformOnlyUsesInstancePath(t *testing.T) {
	d := viewCVDataset(200, 47)
	tf := func(td *dataset.Dataset, rng *stats.RNG) (*dataset.Dataset, error) {
		return sampling.Undersample(td, 0, 60, rng)
	}
	want, err := CrossValidate(context.Background(), instanceOnly{}, d,
		CVConfig{Folds: 5, Seed: 47, Transform: tf})
	if err != nil {
		t.Fatal(err)
	}
	got, err := CrossValidate(context.Background(), tree.Learner{}, d,
		CVConfig{Folds: 5, Seed: 47, Transform: tf})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("transform-only run diverges between learner wrappers")
	}
}
