package eval

import (
	"errors"
	"math"
	"testing"

	"edem/internal/stats"
)

func TestMcNemarIdenticalClassifiers(t *testing.T) {
	labels := []int{0, 1, 0, 1, 1}
	preds := []int{0, 1, 1, 1, 0}
	res, err := McNemar(preds, preds, labels)
	if err != nil {
		t.Fatal(err)
	}
	if res.OnlyAWrong != 0 || res.OnlyBWrong != 0 || res.Significant {
		t.Fatalf("identical classifiers: %+v", res)
	}
}

func TestMcNemarOneSidedDominance(t *testing.T) {
	// B wrong on 30 instances where A is right; A never uniquely wrong.
	n := 100
	labels := make([]int, n)
	predsA := make([]int, n)
	predsB := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = 1
		predsA[i] = 1
		if i < 30 {
			predsB[i] = 0
		} else {
			predsB[i] = 1
		}
	}
	res, err := McNemar(predsA, predsB, labels)
	if err != nil {
		t.Fatal(err)
	}
	if res.OnlyAWrong != 0 || res.OnlyBWrong != 30 {
		t.Fatalf("counts: %+v", res)
	}
	// ((30-1)^2)/30 = 28.03 >> 3.84.
	if math.Abs(res.Statistic-28.033333333333335) > 1e-9 {
		t.Errorf("statistic = %v", res.Statistic)
	}
	if !res.Significant {
		t.Error("clear dominance should be significant")
	}
}

func TestMcNemarBalancedDisagreement(t *testing.T) {
	// Equal unique-error counts: no evidence of a difference.
	labels := make([]int, 40)
	predsA := make([]int, 40)
	predsB := make([]int, 40)
	for i := range labels {
		labels[i] = 1
		predsA[i] = 1
		predsB[i] = 1
	}
	for i := 0; i < 10; i++ {
		predsA[i] = 0 // A uniquely wrong on 0..9
		predsB[10+i] = 0
	}
	res, err := McNemar(predsA, predsB, labels)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant {
		t.Errorf("balanced disagreement flagged significant: %+v", res)
	}
}

func TestMcNemarErrors(t *testing.T) {
	if _, err := McNemar([]int{0}, []int{0, 1}, []int{0, 1}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("err = %v", err)
	}
	if _, err := McNemar(nil, nil, nil); err == nil {
		t.Error("empty input should fail")
	}
}

func TestPairedTTestClearDifference(t *testing.T) {
	a := []float64{0.99, 0.98, 0.99, 0.97, 0.99, 0.98, 0.99, 0.98, 0.99, 0.98}
	b := []float64{0.90, 0.89, 0.91, 0.88, 0.90, 0.89, 0.91, 0.90, 0.89, 0.90}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.DF != 9 {
		t.Errorf("df = %d", res.DF)
	}
	if res.MeanDiff <= 0.07 {
		t.Errorf("mean diff = %v", res.MeanDiff)
	}
	if !res.Significant {
		t.Error("clear gap should be significant")
	}
}

func TestPairedTTestNoise(t *testing.T) {
	rng := stats.NewRNG(1)
	a := make([]float64, 10)
	b := make([]float64, 10)
	for i := range a {
		base := 0.9 + 0.01*rng.NormFloat64()
		a[i] = base + 0.001*rng.NormFloat64()
		b[i] = base + 0.001*rng.NormFloat64()
	}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant && math.Abs(res.MeanDiff) < 1e-4 {
		t.Errorf("noise flagged significant: %+v", res)
	}
}

func TestPairedTTestDegenerate(t *testing.T) {
	// Constant nonzero difference: infinitely significant.
	a := []float64{0.9, 0.9, 0.9}
	b := []float64{0.8, 0.8, 0.8}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant || !math.IsInf(res.Statistic, 1) {
		t.Errorf("constant difference: %+v", res)
	}
	// Identical series: not significant.
	res, err = PairedTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant || res.Statistic != 0 {
		t.Errorf("identical series: %+v", res)
	}
}

func TestPairedTTestErrors(t *testing.T) {
	if _, err := PairedTTest([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("err = %v", err)
	}
	if _, err := PairedTTest([]float64{1}, []float64{1}); err == nil {
		t.Error("single fold should fail")
	}
}

func TestTCritTable(t *testing.T) {
	if got := tCrit05(9); got != 2.262 {
		t.Errorf("tCrit05(9) = %v", got)
	}
	if got := tCrit05(100); got != 1.96 {
		t.Errorf("tCrit05(100) = %v", got)
	}
	if !math.IsInf(tCrit05(0), 1) {
		t.Error("df 0 should be infinite")
	}
}
