package eval

import (
	"errors"
	"fmt"
	"math"
)

// Significance testing for classifier comparisons: McNemar's test on
// paired predictions and the paired t-test on per-fold metrics. These
// back claims of the form "C4.5 is (not) significantly better than X on
// this fault-injection dataset" — the statistical footing for the
// learner-comparison ablation.

// McNemarResult summarises McNemar's test between two classifiers
// evaluated on the same instances.
type McNemarResult struct {
	// OnlyAWrong counts instances misclassified by A but not B.
	OnlyAWrong int
	// OnlyBWrong counts instances misclassified by B but not A.
	OnlyBWrong int
	// Statistic is the continuity-corrected chi-squared statistic.
	Statistic float64
	// Significant reports whether the difference exceeds the 0.05
	// critical value (chi-squared, 1 degree of freedom: 3.841).
	Significant bool
}

// ErrLengthMismatch reports prediction/label slices of unequal length.
var ErrLengthMismatch = errors.New("eval: prediction and label lengths differ")

// McNemar compares two classifiers' predictions against the true
// labels using McNemar's test with continuity correction.
func McNemar(predsA, predsB, labels []int) (*McNemarResult, error) {
	if len(predsA) != len(labels) || len(predsB) != len(labels) {
		return nil, ErrLengthMismatch
	}
	if len(labels) == 0 {
		return nil, errors.New("eval: no instances")
	}
	res := &McNemarResult{}
	for i, y := range labels {
		aWrong := predsA[i] != y
		bWrong := predsB[i] != y
		switch {
		case aWrong && !bWrong:
			res.OnlyAWrong++
		case bWrong && !aWrong:
			res.OnlyBWrong++
		}
	}
	n := float64(res.OnlyAWrong + res.OnlyBWrong)
	if n > 0 {
		d := math.Abs(float64(res.OnlyAWrong-res.OnlyBWrong)) - 1 // continuity correction
		if d < 0 {
			d = 0
		}
		res.Statistic = d * d / n
	}
	const chi2Crit05df1 = 3.841458820694124
	res.Significant = res.Statistic > chi2Crit05df1
	return res, nil
}

// TTestResult summarises a paired t-test over per-fold metric values.
type TTestResult struct {
	// MeanDiff is the mean of (a_i - b_i).
	MeanDiff float64
	// Statistic is the paired t statistic.
	Statistic float64
	// DF is the degrees of freedom (folds - 1).
	DF int
	// Significant reports |t| beyond the two-tailed 0.05 critical
	// value for DF.
	Significant bool
}

// PairedTTest runs the paired two-tailed t-test on matched per-fold
// scores (e.g. the per-fold AUCs of two learners cross-validated on the
// same folds).
func PairedTTest(a, b []float64) (*TTestResult, error) {
	if len(a) != len(b) {
		return nil, ErrLengthMismatch
	}
	n := len(a)
	if n < 2 {
		return nil, fmt.Errorf("eval: paired t-test needs >= 2 folds, got %d", n)
	}
	mean := 0.0
	for i := range a {
		mean += a[i] - b[i]
	}
	mean /= float64(n)
	ss := 0.0
	for i := range a {
		d := (a[i] - b[i]) - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	res := &TTestResult{MeanDiff: mean, DF: n - 1}
	if sd == 0 {
		// Identical differences on every fold: significant iff nonzero.
		if mean != 0 {
			res.Statistic = math.Inf(sign(mean))
			res.Significant = true
		}
		return res, nil
	}
	res.Statistic = mean / (sd / math.Sqrt(float64(n)))
	res.Significant = math.Abs(res.Statistic) > tCrit05(res.DF)
	return res, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// tCrit05 returns the two-tailed 0.05 critical value of Student's t for
// the given degrees of freedom (standard table; the asymptotic value is
// used beyond df 30).
func tCrit05(df int) float64 {
	table := []float64{
		0,      // df 0 (unused)
		12.706, 4.303, 3.182, 2.776, 2.571,
		2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131,
		2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060,
		2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}
