package eval

import (
	"context"
	"fmt"
	"time"

	"edem/internal/dataset"
	"edem/internal/mining"
	"edem/internal/parallel"
	"edem/internal/stats"
	"edem/internal/telemetry"
)

// TrainTransform rewrites a training partition before learning — the
// hook through which class-imbalance handling (undersampling,
// oversampling, SMOTE) enters cross-validation. Transforms are applied
// to training folds only; test folds always keep the natural
// distribution, as in the paper's evaluation.
//
// Folds are evaluated concurrently, so a transform must be safe for
// concurrent calls. Each fold receives its own RNG, forked from the
// seed in fold order, so transform randomness is identical at every
// worker count.
type TrainTransform func(d *dataset.Dataset, rng *stats.RNG) (*dataset.Dataset, error)

// ViewTransform is the columnar analogue of TrainTransform: it derives
// a training view from a fold's columnar store (DESIGN.md §10) instead
// of rewriting a cloned dataset. A transform must be safe for
// concurrent calls and must consume the same RNG stream as its
// instance-based counterpart so either path yields identical folds.
type ViewTransform func(st *dataset.Store, rng *stats.RNG) (*dataset.View, error)

// CVConfig configures a cross-validation run.
type CVConfig struct {
	// Folds is the number of folds (the paper uses 10).
	Folds int
	// Seed drives fold assignment and any transform randomness.
	Seed uint64
	// Transform, if non-nil, preprocesses each training partition.
	Transform TrainTransform
	// ViewTransform, if non-nil, preprocesses each training partition on
	// the columnar path. It is used instead of Transform when the
	// learner implements mining.ViewFitter; set both when configuring a
	// sampling treatment so cross-validation can pick the fastest path
	// the learner supports.
	ViewTransform ViewTransform
	// PositiveClass is the concept class index (default 1).
	PositiveClass int
	// Workers bounds fold parallelism for this run: 0 draws on the
	// process-wide budget (parallel.SetBudget, default all cores),
	// 1 forces serial evaluation. Results are identical either way.
	Workers int
}

// FoldResult captures one fold's confusion matrix and model complexity.
type FoldResult struct {
	Matrix *ConfusionMatrix
	Size   int
}

// CVResult aggregates a k-fold cross-validation in the form reported by
// Tables III and IV: mean FPR/TPR/AUC across folds, mean model
// complexity, and the across-fold AUC variance.
type CVResult struct {
	Folds []FoldResult

	MeanTPR  float64
	MeanFPR  float64
	MeanAUC  float64
	MeanComp float64
	VarAUC   float64
	// Pooled is the confusion matrix summed over all folds.
	Pooled *ConfusionMatrix
}

// CrossValidate runs stratified k-fold cross-validation of learner l on
// dataset d (paper §VII-C: "the data was partitioned into 10 stratified
// samples; for each cross validation run, one of the partitions was
// used as the test sample whilst the other nine were used as the
// training set"). ctx bounds the fold fan-out (cancellation stops
// claiming folds) and carries the active telemetry registry: every call
// records a "crossval" span nested under the caller's phase, one
// eval.folds_evaluated count per fold and the per-fold wall-clock
// distribution in eval.fold_ns.
func CrossValidate(ctx context.Context, l mining.Learner, d *dataset.Dataset, cfg CVConfig) (*CVResult, error) {
	ctx, span := telemetry.StartSpan(ctx, "crossval")
	defer span.End()
	if cfg.Folds == 0 {
		cfg.Folds = 10
	}
	if cfg.PositiveClass == 0 {
		cfg.PositiveClass = PositiveClass
	}
	rng := stats.NewRNG(cfg.Seed)
	folds, err := dataset.StratifiedKFold(d, cfg.Folds, rng)
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}

	// Transform RNGs are forked serially in fold order before the folds
	// are dispatched, so every fold sees the exact stream it saw when
	// the loop was serial — this is what makes results independent of
	// the worker count.
	var rngs []*stats.RNG
	if cfg.Transform != nil || cfg.ViewTransform != nil {
		rngs = make([]*stats.RNG, len(folds))
		for fi := range rngs {
			rngs[fi] = rng.Fork()
		}
	}

	// The columnar path applies when the learner trains from views and
	// any configured transform has a view form; otherwise folds
	// materialise shared-Values training subsets as before.
	viewFitter, _ := l.(mining.ViewFitter)
	useViews := viewFitter != nil && (cfg.Transform == nil || cfg.ViewTransform != nil)

	// Folds are evaluated in parallel into indexed slots; all metric
	// accumulation stays serial (below) so floating-point results match
	// the serial loop bit for bit. The telemetry handles are hoisted out
	// of the loop: with telemetry disabled they are nil and each update
	// is one predictable branch.
	reg := telemetry.FromContext(ctx)
	foldsEvaluated := reg.Counter("eval.folds_evaluated")
	foldNS := reg.Histogram("eval.fold_ns")
	foldOut := make([]FoldResult, len(folds))
	err = parallel.ForEach(ctx, len(folds), cfg.Workers, func(fi int) error {
		var foldStart time.Time
		if reg != nil {
			foldStart = time.Now()
		}
		fold := folds[fi]
		var model mining.Classifier
		var err error
		if useViews {
			st := dataset.NewStore(d, fold.Train)
			v := st.IdentityView()
			if cfg.ViewTransform != nil {
				if v, err = cfg.ViewTransform(st, rngs[fi]); err != nil {
					return fmt.Errorf("eval: fold %d transform: %w", fi, err)
				}
			}
			model, err = viewFitter.FitView(v)
		} else {
			train := d.SubsetShared(fold.Train)
			if cfg.Transform != nil {
				var terr error
				train, terr = cfg.Transform(train, rngs[fi])
				if terr != nil {
					return fmt.Errorf("eval: fold %d transform: %w", fi, terr)
				}
			}
			model, err = l.Fit(train)
		}
		if err != nil {
			return fmt.Errorf("eval: fold %d fit: %w", fi, err)
		}
		cm := NewConfusionMatrix(d.ClassValues)
		for _, ti := range fold.Test {
			in := &d.Instances[ti]
			pred := model.Classify(in.Values)
			if err := cm.Record(in.Class, pred, in.Weight); err != nil {
				return fmt.Errorf("eval: fold %d: %w", fi, err)
			}
		}
		foldOut[fi] = FoldResult{Matrix: cm, Size: mining.ModelSize(model)}
		foldsEvaluated.Inc()
		if reg != nil {
			foldNS.ObserveDuration(time.Since(foldStart))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &CVResult{Pooled: NewConfusionMatrix(d.ClassValues)}
	var aucW, tprW, fprW, compW stats.Welford
	for _, fr := range foldOut {
		res.Folds = append(res.Folds, fr)
		if err := res.Pooled.Merge(fr.Matrix); err != nil {
			return nil, err
		}
		b := fr.Matrix.Binary(cfg.PositiveClass)
		aucW.Add(b.AUC())
		tprW.Add(b.TPR())
		fprW.Add(b.FPR())
		compW.Add(float64(fr.Size))
	}
	res.MeanAUC = aucW.Mean()
	res.MeanTPR = tprW.Mean()
	res.MeanFPR = fprW.Mean()
	res.MeanComp = compW.Mean()
	res.VarAUC = aucW.Variance()
	return res, nil
}

// Evaluate fits l on train and scores it on test, returning the
// confusion matrix — the simple holdout path used by examples.
func Evaluate(l mining.Learner, train, test *dataset.Dataset) (*ConfusionMatrix, error) {
	model, err := l.Fit(train)
	if err != nil {
		return nil, fmt.Errorf("eval: fit: %w", err)
	}
	cm := NewConfusionMatrix(test.ClassValues)
	for i := range test.Instances {
		in := &test.Instances[i]
		if err := cm.Record(in.Class, model.Classify(in.Values), in.Weight); err != nil {
			return nil, err
		}
	}
	return cm, nil
}
