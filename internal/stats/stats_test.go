package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestWelfordAgainstDirect(t *testing.T) {
	cases := [][]float64{
		{1},
		{1, 1, 1, 1},
		{1, 2, 3, 4, 5},
		{-3.5, 2.25, 0, 100, -7},
		{1e9, 1e9 + 1, 1e9 + 2},
	}
	for _, xs := range cases {
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		variance := 0.0
		for _, x := range xs {
			variance += (x - mean) * (x - mean)
		}
		variance /= float64(len(xs))
		if !almostEqual(w.Mean(), mean, 1e-6) {
			t.Errorf("mean(%v) = %v, want %v", xs, w.Mean(), mean)
		}
		if !almostEqual(w.Variance(), variance, 1e-6) {
			t.Errorf("variance(%v) = %v, want %v", xs, w.Variance(), variance)
		}
	}
}

func TestWelfordCounts(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 {
		t.Fatalf("zero value not neutral: %+v", w)
	}
	w.Add(5)
	if w.N() != 1 || w.Mean() != 5 {
		t.Fatalf("after one add: n=%d mean=%v", w.N(), w.Mean())
	}
	if w.Variance() != 0 || w.SampleVariance() != 0 {
		t.Fatalf("variance of single observation must be 0")
	}
}

func TestWelfordSampleVariance(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if !almostEqual(w.Variance(), 4, 1e-9) {
		t.Errorf("population variance = %v, want 4", w.Variance())
	}
	if !almostEqual(w.SampleVariance(), 32.0/7, 1e-9) {
		t.Errorf("sample variance = %v, want %v", w.SampleVariance(), 32.0/7)
	}
	if !almostEqual(w.StdDev(), 2, 1e-9) {
		t.Errorf("stddev = %v, want 2", w.StdDev())
	}
}

func TestDescriptiveStats(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	mean, err := Mean(xs)
	if err != nil || !almostEqual(mean, 3.875, 1e-12) {
		t.Errorf("Mean = %v, %v", mean, err)
	}
	med, err := Median(xs)
	if err != nil || med != 3.5 {
		t.Errorf("Median = %v, %v", med, err)
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	if mn != 1 || mx != 9 {
		t.Errorf("Min/Max = %v/%v", mn, mx)
	}
	v, err := Variance(xs)
	if err != nil || v <= 0 {
		t.Errorf("Variance = %v, %v", v, err)
	}
}

func TestDescriptiveStatsEmpty(t *testing.T) {
	for name, fn := range map[string]func([]float64) (float64, error){
		"Mean": Mean, "Median": Median, "Min": Min, "Max": Max, "Variance": Variance,
	} {
		if _, err := fn(nil); !errors.Is(err, ErrEmpty) {
			t.Errorf("%s(nil) error = %v, want ErrEmpty", name, err)
		}
	}
}

func TestMedianOdd(t *testing.T) {
	med, err := Median([]float64{9, 1, 5})
	if err != nil || med != 5 {
		t.Fatalf("Median = %v, %v", med, err)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestClamp(t *testing.T) {
	for _, tt := range []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	} {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestSignedLog(t *testing.T) {
	if SignedLog(0) != 0 {
		t.Error("SignedLog(0) != 0")
	}
	if !almostEqual(SignedLog(math.E-1), 1, 1e-12) {
		t.Error("SignedLog(e-1) != 1")
	}
	if !almostEqual(SignedLog(-(math.E - 1)), -1, 1e-12) {
		t.Error("SignedLog(-(e-1)) != -1")
	}
	if SignedLog(math.NaN()) != 0 {
		t.Error("SignedLog(NaN) should map to 0")
	}
}

func TestSignedLogProperties(t *testing.T) {
	// Odd symmetry and monotonicity.
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return almostEqual(SignedLog(-x), -SignedLog(x), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return SignedLog(a) <= SignedLog(b)+1e-12
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalInverse(t *testing.T) {
	// Known quantiles of the standard normal distribution.
	for _, tt := range []struct{ p, want float64 }{
		{0.5, 0},
		{0.75, 0.6744897501960817},
		{0.975, 1.959963984540054},
		{0.25, -0.6744897501960817},
		{0.9, 1.2815515655446004},
	} {
		if got := NormalInverse(tt.p); !almostEqual(got, tt.want, 1e-8) {
			t.Errorf("NormalInverse(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsInf(NormalInverse(0), -1) || !math.IsInf(NormalInverse(1), 1) {
		t.Error("boundary values should map to infinities")
	}
	if !math.IsNaN(NormalInverse(-0.5)) || !math.IsNaN(NormalInverse(math.NaN())) {
		t.Error("out-of-domain values should map to NaN")
	}
}

func TestNormalInverseRoundTrip(t *testing.T) {
	// CDF(NormalInverse(p)) == p via erf.
	cdf := func(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }
	for p := 0.001; p < 1; p += 0.013 {
		x := NormalInverse(p)
		if !almostEqual(cdf(x), p, 1e-7) {
			t.Errorf("cdf(inv(%v)) = %v", p, cdf(x))
		}
	}
}
