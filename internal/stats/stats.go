// Package stats provides small numeric helpers shared by the mining and
// evaluation packages: running moments, simple descriptive statistics and
// a deterministic pseudo-random source used throughout the repository.
//
// Role in the methodology: cross-cutting numeric support — the RNG is
// the root of the repository's determinism guarantee (DESIGN.md §8):
// every stochastic component (test-case generation, fold assignment,
// sampling transforms) derives a private stream from seed and position.
// Concurrency: an *RNG and a Welford accumulator are single-goroutine
// objects — derive one per work item rather than sharing; the pure
// functions (NormalInverse etc.) are safe everywhere.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by descriptive statistics that are undefined on an
// empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Welford accumulates mean and variance in a single pass using Welford's
// online algorithm. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations added so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or 0 if no observations were added.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (dividing by n), matching the
// paper's per-fold variance column. It returns 0 for fewer than two
// observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the unbiased sample variance (dividing by n-1).
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Variance(), nil
}

// Median returns the median of xs without modifying the input.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid], nil
	}
	return (cp[mid-1] + cp[mid]) / 2, nil
}

// Min returns the minimum of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// SignedLog applies the paper's attribute transformation
//
//	g(x) =  log(x+1)      if x >= 0
//	g(x) = -log(|x|+1)    if x <  0
//
// which compresses the extreme magnitudes produced by high-order bit
// flips before feeding data to learners such as Naïve Bayes or logistic
// regression (paper §V-C).
func SignedLog(x float64) float64 {
	if math.IsNaN(x) {
		return 0
	}
	if x >= 0 {
		return math.Log(x + 1)
	}
	return -math.Log(math.Abs(x) + 1)
}
