package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). Every stochastic component in
// the repository takes an *RNG rather than using a global source, so
// campaigns, folds and sampling are reproducible from explicit seeds.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to spread the seed across the state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	rotl := func(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0,
// mirroring math/rand semantics; callers validate n at their boundary.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u <= 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent generator from the current stream. Forked
// generators let parallel campaign workers stay deterministic regardless
// of scheduling order.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}
