package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %v", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("value %d never drawn in 10000 tries", v)
		}
	}
}

func TestRNGIntnPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestRNGShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestRNGUniformity(t *testing.T) {
	// Chi-squared-ish sanity: 16 buckets over 64k draws should each hold
	// roughly 4096 +- 10%.
	r := NewRNG(99)
	buckets := make([]int, 16)
	const draws = 1 << 16
	for i := 0; i < draws; i++ {
		buckets[r.Uint64()>>60]++
	}
	want := draws / 16
	for b, n := range buckets {
		if n < want*9/10 || n > want*11/10 {
			t.Errorf("bucket %d has %d draws, want ~%d", b, n, want)
		}
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	var w Welford
	for i := 0; i < 50000; i++ {
		w.Add(r.NormFloat64())
	}
	if math.Abs(w.Mean()) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", w.Mean())
	}
	if math.Abs(w.Variance()-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", w.Variance())
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(1)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Error("consecutive forks should start differently")
	}
	// Forking is itself deterministic.
	r1 := NewRNG(1)
	g1 := r1.Fork()
	r2 := NewRNG(1)
	g2 := r2.Fork()
	if g1.Uint64() != g2.Uint64() {
		t.Error("forks of identical parents should match")
	}
}
