// Package flightgear implements the FlightGear-analog target system of
// the paper (§VI-B): a fixed-wing takeoff simulator executing 2700
// iterations of a main simulation loop (500 initialisation + 2200
// pre/post-injection), with a control module providing a consistent
// input vector at each iteration.
//
// Two modules are instrumented, matching Table II:
//
//   - Gear: landing-gear dynamics (ground reaction, rolling friction,
//     strut compression, retraction). Its state is strongly correlated
//     with flight phase, which is why Gear datasets (FG-A*) are highly
//     learnable.
//   - Mass: mass properties (fuel burn, total mass, centre of gravity).
//     Whether a corrupted mass value leads to failure depends on wind
//     and loading conditions that are NOT visible in the Mass module's
//     state, which is why Mass datasets (FG-B1/FG-B3) plateau below
//     full completeness in the paper.
//
// The failure specification implements §VI-F: speed failures, distance
// failures and angle failures.
//
// Role in the methodology: a Step 1 system under injection (datasets
// FG-A*/FG-B* of Table II). Concurrency: System is a stateless value —
// each Run call constructs its whole simulation state from the test
// case, so campaign workers share one System and call Run concurrently;
// the per-run Probe is the only externally supplied state.
package flightgear

import (
	"fmt"
	"math"

	"edem/internal/bitflip"
	"edem/internal/propane"
)

// Simulation constants (SI units internally; test-case parameters use
// the paper's lbs / kph).
const (
	// Iterations is the total number of main-loop iterations per run.
	Iterations = 2700
	// InitIterations is the initialisation period at the start of a run.
	InitIterations = 500

	dt            = 0.02  // s per iteration
	gravity       = 9.81  // m/s^2
	airRho        = 1.225 // kg/m^3 at sea level
	wingArea      = 16.0  // m^2
	clMax         = 1.6   // max lift coefficient
	clRoll        = 0.45  // lift coefficient during ground roll
	cd0           = 0.035 // parasitic drag coefficient
	kInduced      = 0.040 // induced drag factor
	muRoll        = 0.035 // rolling friction coefficient
	residBrake    = 0.002 // residual brake drag coefficient during takeoff
	gearDragCoeff = 0.03  // parasitic drag factor of the extended gear

	maxThrust   = 1900.0 // N static thrust
	thrustDecay = 0.012  // thrust loss per m/s of airspeed

	lbToKg   = 0.45359237
	kphToMps = 1.0 / 3.6

	// BaseWeightLbs is the aircraft base weight used by the distance
	// failure specification.
	BaseWeightLbs = 1300.0

	// baseTakeoffDistance is the manufacturer's specified takeoff
	// distance at base weight; the spec adds 10 m per additional 200 lbs
	// (paper §VI-F).
	baseTakeoffDistance = 140.0 // m
	// quadLoadCoeff is the quadratic loading correction of the takeoff
	// distance specification, in metres per (200 lbs over base)^2.
	quadLoadCoeff = 25.5

	// maxPitchRate is the angle-failure threshold (deg/s) before the
	// aircraft is clear of the runway.
	maxPitchRate = 4.5
	// obstacleHeight is the "clear of runway" altitude (50 ft).
	obstacleHeight = 15.0 // m

	targetPitch  = 8.0 // deg commanded during rotation
	nominalMass  = 800 // kg, reference for pitch response scaling
	stallMargin  = 1.0 // multiplier on stall speed for stall detection
	rotateFactor = 1.10
	safeFactor   = 1.18
)

// Module names as they appear in Table II.
const (
	ModuleGear = "Gear"
	ModuleMass = "Mass"
)

// System is the FlightGear-analog target. The zero value is ready to use.
type System struct{}

var _ propane.Target = System{}

// Name implements propane.Target.
func (System) Name() string { return "FlightGear" }

// Modules implements propane.Target.
func (System) Modules() []propane.ModuleInfo {
	return []propane.ModuleInfo{
		{
			Name: ModuleGear,
			Vars: []propane.VarDecl{
				{Name: "gearPosition", Kind: bitflip.Float64},
				{Name: "compression", Kind: bitflip.Float64},
				{Name: "normalForce", Kind: bitflip.Float64},
				{Name: "frictionForce", Kind: bitflip.Float64},
				{Name: "rollCoeff", Kind: bitflip.Float64},
				{Name: "brakeCoeff", Kind: bitflip.Float64},
				{Name: "weightOnWheels", Kind: bitflip.Bool},
				{Name: "gearDrag", Kind: bitflip.Float64},
				{Name: "strutLoad", Kind: bitflip.Float64},
			},
		},
		{
			Name: ModuleMass,
			Vars: []propane.VarDecl{
				{Name: "emptyMass", Kind: bitflip.Float64},
				{Name: "fuelMass", Kind: bitflip.Float64},
				{Name: "maxFuel", Kind: bitflip.Float64},
				{Name: "totalMass", Kind: bitflip.Float64},
				{Name: "fuelFlow", Kind: bitflip.Float64},
				{Name: "cgOffset", Kind: bitflip.Float64},
				{Name: "inertiaPitch", Kind: bitflip.Float64},
			},
		},
	}
}

// TestCases implements propane.Target: the paper's 9 test cases, 3
// aircraft masses x 3 wind speeds uniformly distributed across
// 1300-2100 lbs and 0-60 kph (§VI-C). n caps the suite size; seed is
// unused because the FlightGear workload grid is deterministic.
func (System) TestCases(n int, seed uint64) []propane.TestCase {
	masses := []float64{1300, 1700, 2100} // lbs
	winds := []float64{0, 30, 60}         // kph headwind
	var tcs []propane.TestCase
	id := 0
	for _, m := range masses {
		for _, w := range winds {
			if n > 0 && id >= n {
				return tcs
			}
			tcs = append(tcs, propane.TestCase{
				ID:   id,
				Seed: seed + uint64(id),
				Params: map[string]float64{
					"massLbs": m,
					"windKph": w,
				},
			})
			id++
		}
	}
	return tcs
}

// Outcome is the observable output of one takeoff run, from which the
// failure specification is evaluated.
type Outcome struct {
	// ReachedCritical reports passing the critical ground speed.
	ReachedCritical bool
	// ReachedRotate reports passing the velocity of rotation.
	ReachedRotate bool
	// ReachedSafe reports reaching the safe takeoff speed.
	ReachedSafe bool
	// TakeoffDistance is the ground distance at liftoff (m). Infinite if
	// the aircraft never lifted off.
	TakeoffDistance float64
	// MaxPitchRateBeforeClear is the maximum pitch rate (deg/s)
	// observed before clearing the runway obstacle height.
	MaxPitchRateBeforeClear float64
	// Stalled reports a stall during climb out.
	Stalled bool
	// ClearedObstacle reports climbing past the obstacle height.
	ClearedObstacle bool
}

// Run implements propane.Target.
func (s System) Run(tc propane.TestCase, probe propane.Probe) (any, error) {
	st, err := s.newRunState(tc)
	if err != nil {
		return nil, err
	}
	return s.exec(st, probe, nil, 0, 0)
}

// runState is the complete resumable execution state of one run: the
// loop position plus the simulation state. The simulation state is all
// scalars, so a value copy is a deep copy.
type runState struct {
	iter  int // current main-loop iteration, 1-based
	phase int // next phase to execute within the iteration (see exec)
	sim   state

	// Cached per-run VarRef slices (the scratch-slice reuse: closures
	// capture fields of sim, so they are rebuilt lazily per runState
	// and never cloned).
	gearVars, massVars []propane.VarRef
}

func (s System) newRunState(tc propane.TestCase) (*runState, error) {
	massLbs, ok := tc.Params["massLbs"]
	if !ok {
		return nil, fmt.Errorf("flightgear: test case %d missing massLbs", tc.ID)
	}
	windKph, ok := tc.Params["windKph"]
	if !ok {
		return nil, fmt.Errorf("flightgear: test case %d missing windKph", tc.ID)
	}
	return &runState{iter: 1, sim: *newState(massLbs*lbToKg, windKph*kphToMps)}, nil
}

// Clone implements propane.State.
func (r *runState) Clone() propane.State {
	return &runState{iter: r.iter, phase: r.phase, sim: r.sim}
}

// Digest implements propane.State, fingerprinting every field that
// determines the remainder of the run (position, kinematics, module
// variables, phase bookkeeping and the accumulated outcome).
func (r *runState) Digest() propane.Digest {
	h := propane.NewStateHasher()
	h.Int(r.iter)
	h.Int(r.phase)
	s := &r.sim
	for _, v := range []float64{
		s.x, s.h, s.v, s.vs, s.pitch, s.pitchRt, s.wind,
		s.gearPosition, s.compression, s.normalForce, s.frictionForce,
		s.rollCoeff, s.brakeCoeff, s.gearDrag, s.strutLoad,
		s.emptyMass, s.fuelMass, s.maxFuel, s.totalMass, s.fuelFlow,
		s.cgOffset, s.inertiaPitch, s.liftoffX,
		s.outcome.TakeoffDistance, s.outcome.MaxPitchRateBeforeClear,
	} {
		h.Float64(v)
	}
	for _, b := range []bool{
		s.weightOnWheels, s.airborne,
		s.outcome.ReachedCritical, s.outcome.ReachedRotate,
		s.outcome.ReachedSafe, s.outcome.Stalled, s.outcome.ClearedObstacle,
	} {
		h.Bool(b)
	}
	return h.Sum()
}

// refs returns the cached VarRef slices, building them on first use.
// Golden and snapshot runs pass NopProbe and never call this, which
// skips the per-run closure allocations entirely.
func (r *runState) refs() (gear, mass []propane.VarRef) {
	if r.gearVars == nil {
		r.gearVars = r.sim.gearVarRefs()
		r.massVars = r.sim.massVarRefs()
	}
	return r.gearVars, r.massVars
}

// Phase indices within one iteration. Each phase executes "everything
// up to and including the next instrumentation visit's work", so a
// snapshot taken at (iter, phase) resumes with that phase's visit as
// the next visit issued.
const (
	phaseGearEntry = iota // Gear Entry visit + updateGear
	phaseGearExit         // Gear Exit visit
	phaseMassEntry        // Mass Entry visit + updateMass
	phaseMassExit         // Mass Exit visit + integrate
)

// exec advances the simulation from st's position to completion,
// issuing probe visits in the canonical order. With stopIter > 0 it
// instead returns (nil, nil) the moment st reaches (stopIter,
// stopPhase) — before that phase's visit — which is how Snapshot
// positions a state. ctl, when non-nil, is consulted at the end of
// every completed iteration.
func (s System) exec(st *runState, probe propane.Probe, ctl *propane.RunControl, stopIter, stopPhase int) (any, error) {
	_, nop := probe.(propane.NopProbe)
	var gearVars, massVars []propane.VarRef
	if !nop {
		gearVars, massVars = st.refs()
	}
	step := 0
	for st.iter <= Iterations {
		// Control module: consistent input vector per iteration
		// (§VI-C). Full throttle after init; pitch command by phase.
		throttle := 0.0
		if st.iter > InitIterations {
			throttle = 1.0
		}

		if st.phase == phaseGearEntry {
			if st.iter == stopIter && stopPhase == phaseGearEntry {
				return nil, nil
			}
			if !nop {
				probe.Visit(ModuleGear, propane.Entry, gearVars)
			}
			st.sim.updateGear()
			st.phase = phaseGearExit
		}
		if st.phase == phaseGearExit {
			if st.iter == stopIter && stopPhase == phaseGearExit {
				return nil, nil
			}
			if !nop {
				probe.Visit(ModuleGear, propane.Exit, gearVars)
			}
			st.phase = phaseMassEntry
		}
		if st.phase == phaseMassEntry {
			if st.iter == stopIter && stopPhase == phaseMassEntry {
				return nil, nil
			}
			if !nop {
				probe.Visit(ModuleMass, propane.Entry, massVars)
			}
			st.sim.updateMass()
			st.phase = phaseMassExit
		}
		if st.phase == phaseMassExit {
			if st.iter == stopIter && stopPhase == phaseMassExit {
				return nil, nil
			}
			if !nop {
				probe.Visit(ModuleMass, propane.Exit, massVars)
			}
			st.sim.integrate(throttle)
			st.phase = phaseGearEntry
			st.iter++
			step++
			if ctl.Checkpoint(step, st) {
				return nil, propane.ErrConverged
			}
		}
	}
	return st.sim.outcome, nil
}

var _ propane.Forkable = System{}

// Snapshot implements propane.Forkable: every module location activates
// exactly once per main-loop iteration, so the activation-th visit of
// (module, at) occurs in iteration `activation` at a fixed phase.
func (s System) Snapshot(tc propane.TestCase, module string, at propane.Location, activation int) (propane.State, bool, error) {
	var phase int
	switch {
	case module == ModuleGear && at == propane.Entry:
		phase = phaseGearEntry
	case module == ModuleGear && at == propane.Exit:
		phase = phaseGearExit
	case module == ModuleMass && at == propane.Entry:
		phase = phaseMassEntry
	case module == ModuleMass && at == propane.Exit:
		phase = phaseMassExit
	default:
		return nil, false, nil
	}
	if activation < 1 || activation > Iterations {
		return nil, false, nil
	}
	st, err := s.newRunState(tc)
	if err != nil {
		return nil, false, err
	}
	if _, err := s.exec(st, propane.NopProbe{}, nil, activation, phase); err != nil {
		return nil, false, err
	}
	if st.iter != activation || st.phase != phase {
		return nil, false, nil
	}
	return st, true, nil
}

// RunFrom implements propane.Forkable.
func (s System) RunFrom(st propane.State, probe propane.Probe, ctl *propane.RunControl) (any, error) {
	rs, ok := st.(*runState)
	if !ok {
		return nil, fmt.Errorf("flightgear: foreign state %T", st)
	}
	return s.exec(rs, probe, ctl, 0, 0)
}

// Failed implements propane.Target, applying the failure specification
// of §VI-F. FlightGear failures are specification violations (informed
// by golden-run observation), so the golden outcome is used only to
// confirm the run was expected to succeed.
func (System) Failed(tc propane.TestCase, golden, observed any) bool {
	obs, ok := observed.(Outcome)
	if !ok {
		return true
	}
	massLbs := tc.Params["massLbs"]
	spec := SpecTakeoffDistance(massLbs)

	// Speed failure: failed to reach a safe takeoff speed.
	if !obs.ReachedSafe {
		return true
	}
	// Distance failure: takeoff distance exceeds the specified distance.
	if !(obs.TakeoffDistance <= spec) { // NaN-safe: NaN counts as failure
		return true
	}
	// Angle failure: pitch rate above 4.5 deg/s before clear of the
	// runway, or a stall during climb out.
	if obs.MaxPitchRateBeforeClear > maxPitchRate || obs.Stalled {
		return true
	}
	// Never clearing the obstacle despite "reaching" speeds indicates a
	// corrupted trajectory.
	return !obs.ClearedObstacle
}

// SpecTakeoffDistance returns the manufacturer-specified takeoff
// distance for the given aircraft weight. The specification follows
// §VI-F: the base distance grows by 10 m for every additional 200 lbs
// over the base weight, plus the type's published quadratic loading
// correction (heavier loadings pay more than the linear uplift because
// rotation speed grows with the square root of weight).
func SpecTakeoffDistance(massLbs float64) float64 {
	over := massLbs - BaseWeightLbs
	if over < 0 {
		over = 0
	}
	return baseTakeoffDistance + 10*(over/200) + quadLoadCoeff*(over/200)*(over/200)
}

// state is the complete simulation state of one run.
type state struct {
	// Kinematics.
	x, h    float64 // ground distance (m), altitude (m)
	v       float64 // ground speed (m/s)
	vs      float64 // vertical speed (m/s)
	pitch   float64 // deg
	pitchRt float64 // deg/s
	wind    float64 // headwind (m/s)

	// Gear module variables.
	gearPosition   float64 // 1 = down, 0 = retracted
	compression    float64 // strut compression fraction
	normalForce    float64 // N
	frictionForce  float64 // N
	rollCoeff      float64
	brakeCoeff     float64
	weightOnWheels bool
	gearDrag       float64 // N
	strutLoad      float64 // N per strut

	// Mass module variables.
	emptyMass    float64 // kg
	fuelMass     float64 // kg
	maxFuel      float64 // kg, tank capacity
	totalMass    float64 // kg
	fuelFlow     float64 // kg/s
	cgOffset     float64 // m from reference
	inertiaPitch float64 // kg m^2

	// Phase bookkeeping.
	airborne bool
	liftoffX float64

	outcome Outcome
}

func newState(massKg, windMps float64) *state {
	fuel := 0.18 * massKg
	s := &state{
		wind:         windMps,
		gearPosition: 1,
		rollCoeff:    muRoll,
		brakeCoeff:   residBrake,
		emptyMass:    massKg - fuel,
		fuelMass:     fuel,
		maxFuel:      0.28 * massKg,
		totalMass:    massKg,
		fuelFlow:     0.012,
		cgOffset:     0.25,
		inertiaPitch: 0.9 * massKg,
	}
	s.outcome.TakeoffDistance = math.Inf(1)
	return s
}

func (s *state) gearVarRefs() []propane.VarRef {
	return []propane.VarRef{
		propane.Float64Ref("gearPosition", &s.gearPosition),
		propane.Float64Ref("compression", &s.compression),
		propane.Float64Ref("normalForce", &s.normalForce),
		propane.Float64Ref("frictionForce", &s.frictionForce),
		propane.Float64Ref("rollCoeff", &s.rollCoeff),
		propane.Float64Ref("brakeCoeff", &s.brakeCoeff),
		propane.BoolRef("weightOnWheels", &s.weightOnWheels),
		propane.Float64Ref("gearDrag", &s.gearDrag),
		propane.Float64Ref("strutLoad", &s.strutLoad),
	}
}

func (s *state) massVarRefs() []propane.VarRef {
	return []propane.VarRef{
		propane.Float64Ref("emptyMass", &s.emptyMass),
		propane.Float64Ref("fuelMass", &s.fuelMass),
		propane.Float64Ref("maxFuel", &s.maxFuel),
		propane.Float64Ref("totalMass", &s.totalMass),
		propane.Float64Ref("fuelFlow", &s.fuelFlow),
		propane.Float64Ref("cgOffset", &s.cgOffset),
		propane.Float64Ref("inertiaPitch", &s.inertiaPitch),
	}
}

// updateGear computes ground reaction while on the ground and animates
// gear retraction after liftoff. rollCoeff and brakeCoeff are persistent
// configuration state; the force outputs are recomputed every activation.
func (s *state) updateGear() {
	airspeed := s.v + s.wind
	q := 0.5 * airRho * airspeed * airspeed
	lift := q * wingArea * s.liftCoeff()
	weight := s.totalMass * gravity

	if !s.airborne {
		s.weightOnWheels = true
		nf := weight - lift
		if nf < 0 {
			nf = 0
		}
		s.normalForce = nf
		s.compression = nf / (weight + 1)
		s.strutLoad = nf / 3
		s.frictionForce = (s.rollCoeff + s.brakeCoeff) * nf
	} else {
		// Airborne: retract the gear over ~4 s; loads drop to zero.
		s.weightOnWheels = false
		s.normalForce = 0
		s.compression = 0
		s.strutLoad = 0
		s.frictionForce = 0
		s.gearPosition -= dt / 4
		if s.gearPosition < 0 {
			s.gearPosition = 0
		}
	}
	gp := s.gearPosition
	if gp < 0 {
		gp = 0
	}
	s.gearDrag = gearDragCoeff * q * wingArea * gp
}

// updateMass burns fuel and recomputes mass properties. The fuel
// quantity is validated against the physical tank capacity: a corrupted
// reading beyond the tank clamps to full, so even wild fuel corruption
// manifests as a plausible (and therefore hard-to-detect) overweight
// condition whose consequences depend on wind and loading.
func (s *state) updateMass() {
	s.fuelMass -= s.fuelFlow * dt
	if s.fuelMass < 0 {
		s.fuelMass = 0
	}
	if cap := s.maxFuel; cap > 0 && s.fuelMass > cap {
		s.fuelMass = cap
	}
	s.totalMass = s.emptyMass + s.fuelMass
	s.cgOffset = 0.25 + 0.02*(s.fuelMass/(s.emptyMass+1))
	s.inertiaPitch = 0.9 * s.totalMass
}

// integrate advances the point-mass dynamics by one step.
func (s *state) integrate(throttle float64) {
	airspeed := s.v + s.wind
	q := 0.5 * airRho * airspeed * airspeed
	cl := s.liftCoeff()
	lift := q * wingArea * cl
	cd := cd0 + kInduced*cl*cl
	drag := q*wingArea*cd + s.gearDrag
	thrust := throttle * maxThrust * math.Max(0, 1-thrustDecay*airspeed)
	weight := s.totalMass * gravity

	// Longitudinal acceleration.
	accel := (thrust - drag - s.frictionForce) / s.totalMass
	s.v += accel * dt
	if s.v < 0 {
		s.v = 0
	}
	s.x += s.v * dt

	vr := rotateFactor * s.stallSpeed()
	v2 := safeFactor * s.stallSpeed()
	vCrit := 0.9 * s.stallSpeed()

	if airspeed >= vCrit {
		s.outcome.ReachedCritical = true
	}
	if airspeed >= vr {
		s.outcome.ReachedRotate = true
	}
	if airspeed >= v2 {
		s.outcome.ReachedSafe = true
	}

	// Pitch control: rotate once past Vr, with response inversely
	// proportional to pitch inertia (so corrupted mass properties
	// provoke angle failures).
	var qCmd float64
	if s.outcome.ReachedRotate && s.pitch < targetPitch {
		qCmd = 3.0 * (nominalMass * 0.9) / math.Max(s.inertiaPitch, 1)
	}
	s.pitchRt = qCmd
	s.pitch += s.pitchRt * dt
	if s.pitch > targetPitch {
		s.pitch = targetPitch
	}
	if !s.outcome.ClearedObstacle && s.pitchRt > s.outcome.MaxPitchRateBeforeClear {
		s.outcome.MaxPitchRateBeforeClear = s.pitchRt
	}

	// Vertical dynamics: lift off when lift exceeds weight.
	if !s.airborne {
		if lift > weight && s.outcome.ReachedRotate {
			s.airborne = true
			s.liftoffX = s.x
			s.outcome.TakeoffDistance = s.x
		}
	} else {
		vAccel := (lift - weight) / s.totalMass
		s.vs += vAccel * dt
		// Damp vertical oscillation: simple climb model.
		if s.vs > 5 {
			s.vs = 5
		}
		if s.vs < -5 {
			s.vs = -5
		}
		s.h += s.vs * dt
		if s.h < 0 {
			s.h = 0
			s.vs = 0
			s.airborne = false
		}
		if s.h >= obstacleHeight {
			s.outcome.ClearedObstacle = true
		}
		if airspeed < stallMargin*s.stallSpeed() && s.h > 1 {
			s.outcome.Stalled = true
		}
	}
}

// liftCoeff returns the current lift coefficient: a rolling value on the
// ground, growing with pitch once rotated.
func (s *state) liftCoeff() float64 {
	cl := clRoll + (clMax-clRoll)*clamp01(s.pitch/targetPitch)
	return cl
}

// stallSpeed derives the stall speed from current mass. Corrupted mass
// values shift every speed gate, which is how Mass-module faults become
// speed and distance failures.
func (s *state) stallSpeed() float64 {
	m := s.totalMass
	if !(m > 1) { // guard NaN and nonsense masses
		m = 1
	}
	return math.Sqrt(2 * m * gravity / (airRho * wingArea * clMax))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
