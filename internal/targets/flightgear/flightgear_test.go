package flightgear

import (
	"math"
	"testing"

	"edem/internal/propane"
)

func TestTestCaseGrid(t *testing.T) {
	s := System{}
	tcs := s.TestCases(9, 1)
	if len(tcs) != 9 {
		t.Fatalf("test cases = %d", len(tcs))
	}
	masses := map[float64]int{}
	winds := map[float64]int{}
	for _, tc := range tcs {
		masses[tc.Params["massLbs"]]++
		winds[tc.Params["windKph"]]++
	}
	for _, m := range []float64{1300, 1700, 2100} {
		if masses[m] != 3 {
			t.Errorf("mass %v appears %d times", m, masses[m])
		}
	}
	for _, w := range []float64{0, 30, 60} {
		if winds[w] != 3 {
			t.Errorf("wind %v appears %d times", w, winds[w])
		}
	}
	// Capped generation.
	if got := len(s.TestCases(4, 1)); got != 4 {
		t.Errorf("capped cases = %d", got)
	}
}

func TestGoldenTakeoffsSucceed(t *testing.T) {
	s := System{}
	for _, tc := range s.TestCases(9, 1) {
		out, err := s.Run(tc, propane.NopProbe{})
		if err != nil {
			t.Fatalf("tc %d: %v", tc.ID, err)
		}
		o := out.(Outcome)
		if s.Failed(tc, o, o) {
			t.Errorf("tc %d (mass=%v wind=%v) fails its own spec: %+v",
				tc.ID, tc.Params["massLbs"], tc.Params["windKph"], o)
		}
		if !o.ReachedCritical || !o.ReachedRotate || !o.ReachedSafe {
			t.Errorf("tc %d speed gates: %+v", tc.ID, o)
		}
		if !o.ClearedObstacle {
			t.Errorf("tc %d never cleared the obstacle", tc.ID)
		}
		if o.MaxPitchRateBeforeClear > maxPitchRate {
			t.Errorf("tc %d pitch rate %v exceeds spec in golden run", tc.ID, o.MaxPitchRateBeforeClear)
		}
	}
}

func TestHeadwindShortensTakeoff(t *testing.T) {
	s := System{}
	tcs := s.TestCases(9, 1)
	// tc 0: 1300 lbs, 0 kph; tc 2: 1300 lbs, 60 kph.
	o0, err := s.Run(tcs[0], propane.NopProbe{})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := s.Run(tcs[2], propane.NopProbe{})
	if err != nil {
		t.Fatal(err)
	}
	if o2.(Outcome).TakeoffDistance >= o0.(Outcome).TakeoffDistance {
		t.Errorf("headwind did not shorten takeoff: %v vs %v",
			o2.(Outcome).TakeoffDistance, o0.(Outcome).TakeoffDistance)
	}
}

func TestHeavierAircraftRollsLonger(t *testing.T) {
	s := System{}
	tcs := s.TestCases(9, 1)
	// tc 0: 1300 lbs; tc 6: 2100 lbs, both 0 kph wind.
	o0, _ := s.Run(tcs[0], propane.NopProbe{})
	o6, _ := s.Run(tcs[6], propane.NopProbe{})
	if o6.(Outcome).TakeoffDistance <= o0.(Outcome).TakeoffDistance {
		t.Errorf("mass did not lengthen takeoff: %v vs %v",
			o6.(Outcome).TakeoffDistance, o0.(Outcome).TakeoffDistance)
	}
}

func TestSpecTakeoffDistance(t *testing.T) {
	if got := SpecTakeoffDistance(BaseWeightLbs); got != baseTakeoffDistance {
		t.Errorf("base spec = %v", got)
	}
	if got := SpecTakeoffDistance(BaseWeightLbs - 100); got != baseTakeoffDistance {
		t.Errorf("below base spec = %v", got)
	}
	// Monotone increasing in weight.
	prev := 0.0
	for m := 1300.0; m <= 2100; m += 100 {
		s := SpecTakeoffDistance(m)
		if s <= prev {
			t.Errorf("spec not monotone at %v lbs", m)
		}
		prev = s
	}
	// 200 lbs over base: the paper's +10 m plus the quadratic term.
	want := baseTakeoffDistance + 10 + quadLoadCoeff
	if got := SpecTakeoffDistance(BaseWeightLbs + 200); math.Abs(got-want) > 1e-9 {
		t.Errorf("spec(+200lbs) = %v, want %v", got, want)
	}
}

func TestFailedSpecBranches(t *testing.T) {
	s := System{}
	tc := s.TestCases(1, 1)[0]
	good := Outcome{
		ReachedCritical: true, ReachedRotate: true, ReachedSafe: true,
		TakeoffDistance: 100, MaxPitchRateBeforeClear: 3, ClearedObstacle: true,
	}
	if s.Failed(tc, good, good) {
		t.Fatal("good outcome flagged")
	}
	for name, mutate := range map[string]func(Outcome) Outcome{
		"speed":    func(o Outcome) Outcome { o.ReachedSafe = false; return o },
		"distance": func(o Outcome) Outcome { o.TakeoffDistance = 1e6; return o },
		"nan dist": func(o Outcome) Outcome { o.TakeoffDistance = math.NaN(); return o },
		"angle":    func(o Outcome) Outcome { o.MaxPitchRateBeforeClear = 5; return o },
		"stall":    func(o Outcome) Outcome { o.Stalled = true; return o },
		"obstacle": func(o Outcome) Outcome { o.ClearedObstacle = false; return o },
	} {
		if !s.Failed(tc, good, mutate(good)) {
			t.Errorf("%s failure not detected", name)
		}
	}
	if !s.Failed(tc, good, "garbage") {
		t.Error("non-outcome must fail")
	}
}

func TestRunRequiresParams(t *testing.T) {
	s := System{}
	if _, err := s.Run(propane.TestCase{ID: 0}, propane.NopProbe{}); err == nil {
		t.Fatal("missing params should error")
	}
	if _, err := s.Run(propane.TestCase{ID: 0, Params: map[string]float64{"massLbs": 1300}}, propane.NopProbe{}); err == nil {
		t.Fatal("missing wind should error")
	}
}

func TestModuleActivationCount(t *testing.T) {
	s := System{}
	counts := map[string]int{}
	probe := probeFunc(func(mod string, loc propane.Location, _ []propane.VarRef) {
		if loc == propane.Entry {
			counts[mod]++
		}
	})
	if _, err := s.Run(s.TestCases(1, 1)[0], probe); err != nil {
		t.Fatal(err)
	}
	if counts[ModuleGear] != Iterations || counts[ModuleMass] != Iterations {
		t.Fatalf("activations = %v, want %d each", counts, Iterations)
	}
}

type probeFunc func(string, propane.Location, []propane.VarRef)

func (f probeFunc) Visit(m string, l propane.Location, v []propane.VarRef) { f(m, l, v) }

func TestCorruptedFrictionCausesFailure(t *testing.T) {
	// Massive rolling friction injected mid-roll must violate the spec
	// for the heavy aircraft.
	s := System{}
	tc := s.TestCases(9, 1)[6] // 2100 lbs, 0 wind
	golden, err := s.Run(tc, propane.NopProbe{})
	if err != nil {
		t.Fatal(err)
	}
	inject := &flipAtProbe{module: ModuleGear, varName: "rollCoeff", bit: 62, activation: 900}
	out, err := s.Run(tc, inject)
	if err == nil && !s.Failed(tc, golden, out) {
		t.Fatal("huge rolling friction mid-roll should cause a failure")
	}
}

func TestFuelClampMakesCorruptionAmbiguous(t *testing.T) {
	// A wildly corrupted fuel mass clamps to tank capacity; whether it
	// then fails depends on wind — with a 60 kph headwind the overweight
	// aircraft still makes its numbers.
	s := System{}
	tcs := s.TestCases(9, 1)
	results := map[float64]bool{}
	for _, idx := range []int{3, 5} { // 1700 lbs at 0 and 60 kph
		tc := tcs[idx]
		golden, err := s.Run(tc, propane.NopProbe{})
		if err != nil {
			t.Fatal(err)
		}
		inject := &flipAtProbe{module: ModuleMass, varName: "fuelMass", bit: 61, activation: 900}
		out, err := s.Run(tc, inject)
		failed := err != nil || s.Failed(tc, golden, out)
		results[tc.Params["windKph"]] = failed
	}
	if !results[0] {
		t.Error("overweight at 0 kph should fail")
	}
	if results[60] {
		t.Error("overweight at 60 kph should survive (hidden-state ambiguity)")
	}
}

type flipAtProbe struct {
	module     string
	varName    string
	bit        int
	activation int
	count      int
	done       bool
}

func (p *flipAtProbe) Visit(mod string, loc propane.Location, vars []propane.VarRef) {
	if mod != p.module || loc != propane.Entry || p.done {
		return
	}
	p.count++
	if p.count == p.activation {
		for _, v := range vars {
			if v.Name == p.varName {
				_ = v.FlipBit(p.bit)
			}
		}
		p.done = true
	}
}
