// Package mp3gain implements the Mp3Gain-analog target system of the
// paper (§VI-B): a ReplayGain-style volume normaliser that analyses the
// loudness of a set of audio tracks and rescales each one to a target
// loudness. Two modules are instrumented, matching Table II: GAnalysis
// (the loudness analyser) and RGain (the gain computation/application).
//
// Tracks are synthetic PCM buffers (sine carriers plus noise at varying
// amplitudes) generated deterministically per test case, standing in for
// the paper's mp3 file sets; what the methodology observes is module
// state and output equivalence, both of which this workload exercises
// identically.
//
// Role in the methodology: a Step 1 system under injection (datasets
// MG-A*/MG-B* of Table II). Concurrency: System is a stateless value —
// each Run call synthesises its tracks and analyser state from the test
// case seed, so campaign workers share one System and call Run
// concurrently; the per-run Probe is the only externally supplied
// state.
package mp3gain

import (
	"fmt"
	"math"

	"edem/internal/bitflip"
	"edem/internal/propane"
	"edem/internal/stats"
)

// Module names as they appear in Table II.
const (
	ModuleGAnalysis = "GAnalysis"
	ModuleRGain     = "RGain"
)

// Analysis constants.
const (
	sampleRate     = 8000
	windowLen      = 400 // 50 ms analysis windows
	targetLoudness = 89.0
	loudnessFloor  = 20.0
	maxGainDB      = 30.0
	// gainStepDB is the granularity of applied gain: like mp3gain's
	// global gain field, gain is applied in fixed steps, so tiny
	// perturbations of the analysis rarely change the output.
	gainStepDB = 1.5
)

// System is the Mp3Gain-analog target. TracksPerCase tracks are
// normalised per test case (the paper uses 25 mp3 files).
type System struct {
	// TracksPerCase is the number of tracks per test case (default 8).
	TracksPerCase int
	// SamplesPerTrack is the PCM length of each track (default 2000).
	SamplesPerTrack int
}

var _ propane.Target = System{}

func (s System) tracksPerCase() int {
	if s.TracksPerCase <= 0 {
		return 8
	}
	return s.TracksPerCase
}

func (s System) samplesPerTrack() int {
	if s.SamplesPerTrack <= 0 {
		return 2000
	}
	return s.SamplesPerTrack
}

// Name implements propane.Target.
func (System) Name() string { return "MP3Gain" }

// Modules implements propane.Target.
func (System) Modules() []propane.ModuleInfo {
	return []propane.ModuleInfo{
		{
			Name: ModuleGAnalysis,
			Vars: []propane.VarDecl{
				{Name: "sumSquares", Kind: bitflip.Float64},
				{Name: "windowRMS", Kind: bitflip.Float64},
				{Name: "peak", Kind: bitflip.Float64},
				{Name: "loudness", Kind: bitflip.Float64},
				{Name: "windowIndex", Kind: bitflip.Int64},
				{Name: "sampleCount", Kind: bitflip.Int64},
			},
		},
		{
			Name: ModuleRGain,
			Vars: []propane.VarDecl{
				{Name: "targetDB", Kind: bitflip.Float64},
				{Name: "gainDB", Kind: bitflip.Float64},
				{Name: "scale", Kind: bitflip.Float64},
				{Name: "clipCount", Kind: bitflip.Int64},
				{Name: "trackIndex", Kind: bitflip.Int64},
			},
		},
	}
}

// TestCases implements propane.Target: each test case is a distinct set
// of tracks derived from the seed (§VI-C).
func (System) TestCases(n int, seed uint64) []propane.TestCase {
	tcs := make([]propane.TestCase, 0, n)
	for i := 0; i < n; i++ {
		tcs = append(tcs, propane.TestCase{
			ID:   i,
			Seed: seed ^ (uint64(i+1) * 0xd1342543de82ef95),
		})
	}
	return tcs
}

// Outcome is the observable output of one normalisation run: a digest
// of all normalised track contents.
type Outcome struct {
	OutputDigest uint64
}

// Failed implements propane.Target: a run fails when the normalised
// output files differ from the golden run (§VI-F).
func (System) Failed(_ propane.TestCase, golden, observed any) bool {
	g, ok1 := golden.(Outcome)
	o, ok2 := observed.(Outcome)
	if !ok1 || !ok2 {
		return true
	}
	return g != o
}

// analysis is the GAnalysis module state. peak and sampleCount persist
// across tracks (album peak and total samples analysed); the remaining
// fields are per-track working state.
type analysis struct {
	sumSquares  float64
	windowRMS   float64
	peak        float64 // album peak: live across the whole run
	loudness    float64 // result of the most recent track analysis
	windowIndex int64
	sampleCount int64 // total samples analysed (statistics)
}

func (a *analysis) varRefs() []propane.VarRef {
	return []propane.VarRef{
		propane.Float64Ref("sumSquares", &a.sumSquares),
		propane.Float64Ref("windowRMS", &a.windowRMS),
		propane.Float64Ref("peak", &a.peak),
		propane.Float64Ref("loudness", &a.loudness),
		propane.Int64Ref("windowIndex", &a.windowIndex),
		propane.Int64Ref("sampleCount", &a.sampleCount),
	}
}

// gain is the RGain module state. targetDB persists for the whole run
// (the normalisation target); the rest is per-track working state.
type gain struct {
	targetDB   float64
	gainDB     float64
	scale      float64
	clipCount  int64 // total clipped samples (statistics)
	trackIndex int64
}

func (g *gain) varRefs() []propane.VarRef {
	return []propane.VarRef{
		propane.Float64Ref("targetDB", &g.targetDB),
		propane.Float64Ref("gainDB", &g.gainDB),
		propane.Float64Ref("scale", &g.scale),
		propane.Int64Ref("clipCount", &g.clipCount),
		propane.Int64Ref("trackIndex", &g.trackIndex),
	}
}

// Run implements propane.Target: for each track, GAnalysis measures
// loudness (activating once per track), then RGain computes and applies
// the gain (activating once per track).
func (s System) Run(tc propane.TestCase, probe propane.Probe) (any, error) {
	return s.exec(s.newRunState(tc), probe, nil, -1, 0)
}

// runState is the complete resumable execution state of one run: the
// loop position, both module states, the rolling digests of all output
// emitted so far, and any value pending between paired visits.
type runState struct {
	track int // current track index, 0-based
	phase int // next phase to execute within the track (see exec)

	an analysis
	ga gain

	// Rolling digests of the normalised outputs folded in so far. d0 is
	// digest-compatible with the historical whole-output FNV-1a hash and
	// becomes Outcome.OutputDigest; d1 is an independent second stream
	// that exists only to strengthen Digest against collisions.
	d0, d1 uint64

	// pendingOut/pendingErr carry apply's result between the RGain Entry
	// and Exit visits. pendingOut is never mutated in place, so clones
	// may share it.
	pendingOut []byte
	pendingErr error

	// tracks is the synthesised input PCM, read-only for the whole run
	// and shared between clones.
	tracks [][]float64

	// Cached per-run VarRef slices (closures capture fields of this
	// struct, so they are rebuilt lazily per runState and never cloned).
	anVars, gaVars []propane.VarRef
}

const (
	digestBasis0 = 14695981039346656037
	digestBasis1 = 0x9e3779b97f4a7c15
	digestPrime  = 1099511628211
)

func (s System) newRunState(tc propane.TestCase) *runState {
	return &runState{
		an:     analysis{},
		ga:     gain{targetDB: targetLoudness, scale: 1},
		d0:     digestBasis0,
		d1:     digestBasis1,
		tracks: s.generateTracks(tc.Seed),
	}
}

// foldOutput folds one completed track's output into the rolling
// digests, matching the historical per-track FNV-1a framing (bytes,
// then an 0xff terminator).
func (r *runState) foldOutput(out []byte) {
	d0, d1 := r.d0, r.d1
	for _, b := range out {
		d0 = (d0 ^ uint64(b)) * digestPrime
		d1 = (d1 ^ uint64(b)) * digestPrime
	}
	r.d0 = (d0 ^ 0xff) * digestPrime
	r.d1 = (d1 ^ 0xff) * digestPrime
}

// Clone implements propane.State. tracks and pendingOut are shared:
// both are read-only once created.
func (r *runState) Clone() propane.State {
	return &runState{
		track: r.track, phase: r.phase,
		an: r.an, ga: r.ga,
		d0: r.d0, d1: r.d1,
		pendingOut: r.pendingOut, pendingErr: r.pendingErr,
		tracks: r.tracks,
	}
}

// Digest implements propane.State, fingerprinting every field that
// determines the remainder of the run. The input tracks are a pure
// function of the test case and are excluded.
func (r *runState) Digest() propane.Digest {
	h := propane.NewStateHasher()
	h.Int(r.track)
	h.Int(r.phase)
	h.Float64(r.an.sumSquares)
	h.Float64(r.an.windowRMS)
	h.Float64(r.an.peak)
	h.Float64(r.an.loudness)
	h.Int64(r.an.windowIndex)
	h.Int64(r.an.sampleCount)
	h.Float64(r.ga.targetDB)
	h.Float64(r.ga.gainDB)
	h.Float64(r.ga.scale)
	h.Int64(r.ga.clipCount)
	h.Int64(r.ga.trackIndex)
	h.Uint64(r.d0)
	h.Uint64(r.d1)
	h.Bytes(r.pendingOut)
	h.Bool(r.pendingErr != nil)
	return h.Sum()
}

// refs returns the cached VarRef slices, building them on first use.
// Golden and snapshot runs pass NopProbe and never call this, which
// skips the per-run closure allocations entirely.
func (r *runState) refs() (anVars, gaVars []propane.VarRef) {
	if r.anVars == nil {
		r.anVars = r.an.varRefs()
		r.gaVars = r.ga.varRefs()
	}
	return r.anVars, r.gaVars
}

// Phase indices within one track. Each phase executes "everything up to
// and including the next instrumentation visit's work", so a snapshot
// taken at (track, phase) resumes with that phase's visit as the next
// visit issued.
const (
	phaseGAEntry = iota // GAnalysis Entry visit + analyse
	phaseGAExit         // GAnalysis Exit visit + trackIndex update
	phaseRGEntry        // RGain Entry visit + apply
	phaseRGExit         // RGain Exit visit + output fold
)

// exec advances the run from st's position to completion, issuing probe
// visits in the canonical order. With stopTrack >= 0 it instead returns
// (nil, nil) the moment st reaches (stopTrack, stopPhase) — before that
// phase's visit — which is how Snapshot positions a state. ctl, when
// non-nil, is consulted at the end of every completed track.
func (s System) exec(st *runState, probe propane.Probe, ctl *propane.RunControl, stopTrack, stopPhase int) (any, error) {
	_, nop := probe.(propane.NopProbe)
	var anVars, gaVars []propane.VarRef
	if !nop {
		anVars, gaVars = st.refs()
	}
	step := 0
	for st.track < len(st.tracks) {
		i := st.track
		pcm := st.tracks[i]

		if st.phase == phaseGAEntry {
			if st.track == stopTrack && stopPhase == phaseGAEntry {
				return nil, nil
			}
			// --- GAnalysis: loudness measurement for track i ---
			if !nop {
				probe.Visit(ModuleGAnalysis, propane.Entry, anVars)
			}
			s.analyse(&st.an, pcm)
			st.phase = phaseGAExit
		}
		if st.phase == phaseGAExit {
			if st.track == stopTrack && stopPhase == phaseGAExit {
				return nil, nil
			}
			if !nop {
				probe.Visit(ModuleGAnalysis, propane.Exit, anVars)
			}
			// --- RGain: gain computation and application for track i ---
			st.ga.trackIndex = int64(i)
			st.phase = phaseRGEntry
		}
		if st.phase == phaseRGEntry {
			if st.track == stopTrack && stopPhase == phaseRGEntry {
				return nil, nil
			}
			if !nop {
				probe.Visit(ModuleRGain, propane.Entry, gaVars)
			}
			st.pendingOut, st.pendingErr = st.ga.apply(st.an.loudness, st.an.peak, pcm)
			st.phase = phaseRGExit
		}
		if st.phase == phaseRGExit {
			if st.track == stopTrack && stopPhase == phaseRGExit {
				return nil, nil
			}
			if !nop {
				probe.Visit(ModuleRGain, propane.Exit, gaVars)
			}
			if st.pendingErr != nil {
				return nil, fmt.Errorf("mp3gain: track %d: %w", i, st.pendingErr)
			}
			st.foldOutput(st.pendingOut)
			st.pendingOut, st.pendingErr = nil, nil
			st.phase = phaseGAEntry
			st.track++
			step++
			if ctl.Checkpoint(step, st) {
				return nil, propane.ErrConverged
			}
		}
	}
	return Outcome{OutputDigest: st.d0}, nil
}

var _ propane.Forkable = System{}

// Snapshot implements propane.Forkable: every module location activates
// exactly once per track, so the activation-th visit of (module, at)
// occurs on track activation-1 at a fixed phase.
func (s System) Snapshot(tc propane.TestCase, module string, at propane.Location, activation int) (propane.State, bool, error) {
	var phase int
	switch {
	case module == ModuleGAnalysis && at == propane.Entry:
		phase = phaseGAEntry
	case module == ModuleGAnalysis && at == propane.Exit:
		phase = phaseGAExit
	case module == ModuleRGain && at == propane.Entry:
		phase = phaseRGEntry
	case module == ModuleRGain && at == propane.Exit:
		phase = phaseRGExit
	default:
		return nil, false, nil
	}
	if activation < 1 || activation > s.tracksPerCase() {
		return nil, false, nil
	}
	track := activation - 1
	st := s.newRunState(tc)
	if _, err := s.exec(st, propane.NopProbe{}, nil, track, phase); err != nil {
		return nil, false, err
	}
	if st.track != track || st.phase != phase {
		return nil, false, nil
	}
	return st, true, nil
}

// RunFrom implements propane.Forkable.
func (s System) RunFrom(st propane.State, probe propane.Probe, ctl *propane.RunControl) (any, error) {
	rs, ok := st.(*runState)
	if !ok {
		return nil, fmt.Errorf("mp3gain: foreign state %T", st)
	}
	return s.exec(rs, probe, ctl, -1, 0)
}

// analyse computes the ReplayGain-style loudness of one track: RMS over
// 50 ms windows with the 95th-percentile window converted to dB relative
// to full scale. The album peak and total sample count accumulate across
// tracks; per-track working state is reset here, inside the module.
func (s System) analyse(an *analysis, pcm []float64) {
	an.windowIndex = 0
	var rmsValues []float64
	for start := 0; start+windowLen <= len(pcm); start += windowLen {
		an.sumSquares = 0
		for _, x := range pcm[start : start+windowLen] {
			an.sumSquares += x * x
			// The album peak is tracked at the tag resolution (1/256
			// steps), like mp3gain's 8-bit peak field.
			if a := math.Ceil(math.Abs(x)*256) / 256; a > an.peak {
				an.peak = a
			}
			an.sampleCount++
		}
		an.windowRMS = math.Sqrt(an.sumSquares / windowLen)
		rmsValues = append(rmsValues, an.windowRMS)
		an.windowIndex++
	}
	if len(rmsValues) == 0 {
		an.loudness = loudnessFloor
		return
	}
	sortFloats(rmsValues)
	idx := int(0.95 * float64(len(rmsValues)-1))
	ref := rmsValues[idx]
	if ref <= 0 {
		an.loudness = loudnessFloor
		return
	}
	an.loudness = 96 + 20*math.Log10(ref)
	if an.loudness < loudnessFloor {
		an.loudness = loudnessFloor
	}
}

// apply computes the track gain from the measured loudness and rescales
// the PCM, quantising to 16-bit output. The album peak caps the scale so
// normalisation never drives prior peaks past full scale (this is what
// makes the analyser's peak variable failure-critical). A gain outside
// the supported range is rejected, mirroring mp3gain's refusal to apply
// absurd gains.
func (g *gain) apply(loudness, albumPeak float64, pcm []float64) ([]byte, error) {
	g.gainDB = gainStepDB * math.Round((g.targetDB-loudness)/gainStepDB)
	if math.IsNaN(g.gainDB) || math.Abs(g.gainDB) > maxGainDB {
		return nil, fmt.Errorf("gain %.2f dB out of range", g.gainDB)
	}
	// Clip guard: back the gain off in whole steps until the album peak
	// stays within full scale. Like mp3gain's 8-bit peak tag, the peak
	// is quantised to 1/256 steps before use.
	if albumPeak > 0 {
		for g.gainDB > -maxGainDB && math.Pow(10, g.gainDB/20)*albumPeak > 1 {
			g.gainDB -= gainStepDB
		}
	}
	g.scale = math.Pow(10, g.gainDB/20)
	out := make([]byte, 0, len(pcm)*2)
	for _, x := range pcm {
		y := x * g.scale
		if y > 1 {
			y = 1
			g.clipCount++
		}
		if y < -1 {
			y = -1
			g.clipCount++
		}
		v := int16(y * 32767)
		out = append(out, byte(v), byte(uint16(v)>>8))
	}
	return out, nil
}

// generateTracks produces deterministic synthetic PCM: sine carriers at
// varying frequencies and amplitudes with additive noise, so tracks have
// distinct loudness levels for the normaliser to equalise.
func (s System) generateTracks(seed uint64) [][]float64 {
	rng := stats.NewRNG(seed)
	tracks := make([][]float64, s.tracksPerCase())
	for t := range tracks {
		n := s.samplesPerTrack()
		amp := 0.05 + 0.6*rng.Float64()
		freq := 100 + rng.Float64()*900
		noise := 0.01 + 0.05*rng.Float64()
		pcm := make([]float64, n)
		for i := range pcm {
			pcm[i] = amp*math.Sin(2*math.Pi*freq*float64(i)/sampleRate) +
				noise*(rng.Float64()*2-1)
		}
		tracks[t] = pcm
	}
	return tracks
}

// sortFloats is a small insertion sort; window counts are tiny and this
// avoids pulling package sort into the per-run hot path.
func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}
