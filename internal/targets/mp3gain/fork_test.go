package mp3gain_test

import (
	"context"
	"math"
	"testing"

	"edem/internal/propane"
	"edem/internal/targets/mp3gain"
)

func forkTarget() mp3gain.System {
	return mp3gain.System{TracksPerCase: 4, SamplesPerTrack: 800}
}

func forkSpec(module string, inject, sample propane.Location) propane.Spec {
	return propane.Spec{
		Dataset:        "MG-FORK",
		Module:         module,
		InjectAt:       inject,
		SampleAt:       sample,
		InjectionTimes: []int{1, 3},
		TestCases:      2,
		Seed:           42,
		BitStride:      8,
	}
}

func sameRecords(t *testing.T, got, want []propane.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("record count %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		same := g.TestCase == w.TestCase && g.Var == w.Var && g.Bit == w.Bit &&
			g.InjectionTime == w.InjectionTime && g.Injected == w.Injected &&
			g.Sampled == w.Sampled && g.Failure == w.Failure &&
			g.Crashed == w.Crashed && g.FlipErr == w.FlipErr &&
			len(g.State) == len(w.State)
		if same {
			for k := range g.State {
				if math.Float64bits(g.State[k]) != math.Float64bits(w.State[k]) {
					same = false
					break
				}
			}
		}
		if !same {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

// TestForkEquivalence pins the fast path bit-identical to the slow
// path across both instrumented modules and all location triples.
func TestForkEquivalence(t *testing.T) {
	for _, cfg := range []struct {
		name           string
		module         string
		inject, sample propane.Location
	}{
		{"ga-entry-entry", mp3gain.ModuleGAnalysis, propane.Entry, propane.Entry},
		{"ga-entry-exit", mp3gain.ModuleGAnalysis, propane.Entry, propane.Exit},
		{"rg-entry-exit", mp3gain.ModuleRGain, propane.Entry, propane.Exit},
		{"rg-exit-exit", mp3gain.ModuleRGain, propane.Exit, propane.Exit},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			spec := forkSpec(cfg.module, cfg.inject, cfg.sample)
			slow, err := propane.Run(context.Background(), forkTarget(), spec)
			if err != nil {
				t.Fatal(err)
			}
			spec.Fork = true
			fast, err := propane.Run(context.Background(), forkTarget(), spec)
			if err != nil {
				t.Fatal(err)
			}
			sameRecords(t, fast.Records, slow.Records)
		})
	}
}

// TestSnapshotResume: a fault-free run resumed from any snapshot
// position reproduces the golden outcome, and running a clone leaves
// the base snapshot untouched.
func TestSnapshotResume(t *testing.T) {
	target := forkTarget()
	tc := target.TestCases(1, 99)[0]
	golden, err := propane.RunGolden(target, tc)
	if err != nil {
		t.Fatal(err)
	}
	for _, module := range []string{mp3gain.ModuleGAnalysis, mp3gain.ModuleRGain} {
		for _, at := range []propane.Location{propane.Entry, propane.Exit} {
			for activation := 1; activation <= 4; activation++ {
				st, ok, err := target.Snapshot(tc, module, at, activation)
				if err != nil || !ok {
					t.Fatalf("Snapshot(%s,%v,%d): ok=%v err=%v", module, at, activation, ok, err)
				}
				before := st.Digest()
				out, err := target.RunFrom(st.Clone(), propane.NopProbe{}, nil)
				if err != nil {
					t.Fatalf("RunFrom(%s,%v,%d): %v", module, at, activation, err)
				}
				if target.Failed(tc, golden, out) {
					t.Fatalf("resumed run from (%s,%v,%d) diverged from golden", module, at, activation)
				}
				if st.Digest() != before {
					t.Fatalf("running a clone mutated the base snapshot at (%s,%v,%d)", module, at, activation)
				}
			}
		}
	}
	// Activations beyond the track count are unreachable, not errors.
	if _, ok, err := target.Snapshot(tc, mp3gain.ModuleRGain, propane.Entry, 5); ok || err != nil {
		t.Fatalf("activation beyond the run should be unreachable: ok=%v err=%v", ok, err)
	}
}
