package mp3gain

import (
	"math"
	"testing"

	"edem/internal/propane"
)

func TestGoldenDeterminism(t *testing.T) {
	s := System{}
	tc := s.TestCases(2, 5)[1]
	o1, err := s.Run(tc, propane.NopProbe{})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := s.Run(tc, propane.NopProbe{})
	if err != nil {
		t.Fatal(err)
	}
	if o1 != o2 {
		t.Fatal("golden runs differ")
	}
	if s.Failed(tc, o1, o2) {
		t.Fatal("identical outputs must not fail")
	}
}

func TestDistinctTestCasesDiffer(t *testing.T) {
	s := System{}
	tcs := s.TestCases(2, 5)
	o1, _ := s.Run(tcs[0], propane.NopProbe{})
	o2, _ := s.Run(tcs[1], propane.NopProbe{})
	if o1 == o2 {
		t.Fatal("distinct test cases gave identical digests")
	}
}

func TestAnalyseLoudnessOrdering(t *testing.T) {
	// A louder signal must measure louder.
	s := System{}
	quiet := make([]float64, 2000)
	loud := make([]float64, 2000)
	for i := range quiet {
		v := math.Sin(2 * math.Pi * 440 * float64(i) / sampleRate)
		quiet[i] = 0.05 * v
		loud[i] = 0.6 * v
	}
	aq := &analysis{}
	s.analyse(aq, quiet)
	al := &analysis{}
	s.analyse(al, loud)
	if al.loudness <= aq.loudness {
		t.Fatalf("loud %.2f <= quiet %.2f", al.loudness, aq.loudness)
	}
	if al.peak <= aq.peak {
		t.Fatalf("peaks: %v <= %v", al.peak, aq.peak)
	}
}

func TestAnalyseEmptyTrack(t *testing.T) {
	s := System{}
	an := &analysis{}
	s.analyse(an, nil)
	if an.loudness != loudnessFloor {
		t.Fatalf("empty track loudness = %v", an.loudness)
	}
	s.analyse(an, make([]float64, 2000)) // silence
	if an.loudness != loudnessFloor {
		t.Fatalf("silent track loudness = %v", an.loudness)
	}
}

func TestPeakIsQuantized(t *testing.T) {
	s := System{}
	an := &analysis{}
	pcm := make([]float64, 2000)
	for i := range pcm {
		pcm[i] = 0.513 * math.Sin(2*math.Pi*300*float64(i)/sampleRate)
	}
	s.analyse(an, pcm)
	if an.peak <= 0 {
		t.Fatal("no peak measured")
	}
	q := an.peak * 256
	if math.Abs(q-math.Round(q)) > 1e-9 {
		t.Fatalf("peak %v is not on the 1/256 grid", an.peak)
	}
}

func TestGainQuantizedToSteps(t *testing.T) {
	g := &gain{targetDB: targetLoudness}
	pcm := []float64{0.1, -0.1, 0.2}
	if _, err := g.apply(80, 0.5, pcm); err != nil {
		t.Fatal(err)
	}
	steps := g.gainDB / gainStepDB
	if math.Abs(steps-math.Round(steps)) > 1e-9 {
		t.Fatalf("gain %v dB is not a multiple of %v", g.gainDB, gainStepDB)
	}
}

func TestGainRejectsAbsurdValues(t *testing.T) {
	g := &gain{targetDB: targetLoudness}
	if _, err := g.apply(5, 0.5, []float64{0}); err == nil {
		t.Fatal("gain beyond range should be rejected")
	}
	if _, err := g.apply(math.NaN(), 0.5, []float64{0}); err == nil {
		t.Fatal("NaN loudness should be rejected")
	}
}

func TestClipGuardCapsGain(t *testing.T) {
	g := &gain{targetDB: targetLoudness}
	pcm := []float64{0.9, -0.9}
	// Quiet measurement would demand a big boost, but the album peak is
	// already near full scale: the guard must back the gain off.
	out, err := g.apply(75, 0.95, pcm)
	if err != nil {
		t.Fatal(err)
	}
	if g.scale*0.95 > 1+1e-9 {
		t.Fatalf("clip guard failed: scale %v with peak 0.95", g.scale)
	}
	if len(out) != 4 {
		t.Fatalf("output bytes = %d", len(out))
	}
}

func TestApplyCountsClipping(t *testing.T) {
	g := &gain{targetDB: targetLoudness}
	pcm := []float64{2, -2, 0.1}
	if _, err := g.apply(targetLoudness, 0, pcm); err != nil { // scale 1, no peak info
		t.Fatal(err)
	}
	if g.clipCount != 2 {
		t.Fatalf("clipCount = %d, want 2", g.clipCount)
	}
}

func TestNormalizationEqualizesLoudness(t *testing.T) {
	// After normalisation, quiet and loud tracks end up at comparable
	// loudness (within one gain step plus measurement wiggle).
	s := System{}
	mk := func(amp float64) []float64 {
		pcm := make([]float64, 4000)
		for i := range pcm {
			pcm[i] = amp * math.Sin(2*math.Pi*500*float64(i)/sampleRate)
		}
		return pcm
	}
	decode := func(b []byte) []float64 {
		out := make([]float64, len(b)/2)
		for i := range out {
			v := int16(uint16(b[2*i]) | uint16(b[2*i+1])<<8)
			out[i] = float64(v) / 32767
		}
		return out
	}
	loudnessOf := func(pcm []float64) float64 {
		an := &analysis{}
		s.analyse(an, pcm)
		return an.loudness
	}
	g1 := &gain{targetDB: targetLoudness}
	o1, err := g1.apply(loudnessOf(mk(0.05)), 0, mk(0.05))
	if err != nil {
		t.Fatal(err)
	}
	g2 := &gain{targetDB: targetLoudness}
	o2, err := g2.apply(loudnessOf(mk(0.4)), 0, mk(0.4))
	if err != nil {
		t.Fatal(err)
	}
	l1 := loudnessOf(decode(o1))
	l2 := loudnessOf(decode(o2))
	if math.Abs(l1-l2) > 2*gainStepDB {
		t.Fatalf("normalised loudness differs: %v vs %v", l1, l2)
	}
}

func TestModuleActivations(t *testing.T) {
	s := System{}
	counts := map[string]int{}
	probe := probeFunc(func(mod string, loc propane.Location, _ []propane.VarRef) {
		if loc == propane.Entry {
			counts[mod]++
		}
	})
	if _, err := s.Run(s.TestCases(1, 1)[0], probe); err != nil {
		t.Fatal(err)
	}
	want := s.tracksPerCase()
	if counts[ModuleGAnalysis] != want || counts[ModuleRGain] != want {
		t.Fatalf("activations = %v, want %d each", counts, want)
	}
}

type probeFunc func(string, propane.Location, []propane.VarRef)

func (f probeFunc) Visit(m string, l propane.Location, v []propane.VarRef) { f(m, l, v) }

func TestCorruptedTargetCausesFailure(t *testing.T) {
	s := System{}
	tc := s.TestCases(1, 9)[0]
	golden, err := s.Run(tc, propane.NopProbe{})
	if err != nil {
		t.Fatal(err)
	}
	// Flip a high exponent bit of targetDB at the second track.
	inject := &flipAtProbe{module: ModuleRGain, varName: "targetDB", bit: 62, activation: 2}
	out, err := s.Run(tc, inject)
	if err == nil && !s.Failed(tc, golden, out) {
		t.Fatal("corrupted normalisation target should fail")
	}
	// A last-bit mantissa flip is absorbed by gain quantisation.
	tiny := &flipAtProbe{module: ModuleRGain, varName: "targetDB", bit: 0, activation: 2}
	out, err = s.Run(tc, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if s.Failed(tc, golden, out) {
		t.Fatal("one-ulp target corruption should be benign under stepped gain")
	}
}

type flipAtProbe struct {
	module     string
	varName    string
	bit        int
	activation int
	count      int
	done       bool
}

func (p *flipAtProbe) Visit(mod string, loc propane.Location, vars []propane.VarRef) {
	if mod != p.module || loc != propane.Entry || p.done {
		return
	}
	p.count++
	if p.count == p.activation {
		for _, v := range vars {
			if v.Name == p.varName {
				_ = v.FlipBit(p.bit)
			}
		}
		p.done = true
	}
}
