package sevenzip

import (
	"encoding/binary"
	"fmt"

	"edem/internal/bitflip"
	"edem/internal/propane"
	"edem/internal/stats"
)

// Module names as they appear in Table II.
const (
	ModuleFHandle = "FHandle"
	ModuleLDecode = "LDecode"
)

// Archive format constants.
const (
	archMagic     = "7ZGO"
	headerVersion = 4
	codecLZSS     = 3
)

// System is the 7-Zip-analog target: each run archives a set of input
// files and then extracts them, recovering the original content
// (paper §VI-C). FilesPerCase controls the workload size; the paper
// uses 25 files per test case.
type System struct {
	// FilesPerCase is the number of files archived per test case
	// (default 10).
	FilesPerCase int
	// MeanFileSize is the approximate size of each synthetic file in
	// bytes (default 768).
	MeanFileSize int
}

var _ propane.Target = System{}

func (s System) filesPerCase() int {
	if s.FilesPerCase <= 0 {
		return 10
	}
	return s.FilesPerCase
}

func (s System) meanFileSize() int {
	if s.MeanFileSize <= 0 {
		return 768
	}
	return s.MeanFileSize
}

// Name implements propane.Target.
func (System) Name() string { return "7-Zip" }

// Modules implements propane.Target.
func (System) Modules() []propane.ModuleInfo {
	return []propane.ModuleInfo{
		{
			Name: ModuleFHandle,
			Vars: []propane.VarDecl{
				{Name: "fileIndex", Kind: bitflip.Int64},
				{Name: "origSize", Kind: bitflip.Int64},
				{Name: "compSize", Kind: bitflip.Int64},
				{Name: "fileCRC", Kind: bitflip.Int64},
				{Name: "archOffset", Kind: bitflip.Int64},
				{Name: "headerVer", Kind: bitflip.Int64},
				{Name: "codecID", Kind: bitflip.Int64},
				{Name: "bytesIn", Kind: bitflip.Int64},
				{Name: "bytesOut", Kind: bitflip.Int64},
				{Name: "filesDone", Kind: bitflip.Int64},
				{Name: "ratioPct", Kind: bitflip.Float64},
			},
		},
		{
			Name: ModuleLDecode,
			Vars: []propane.VarDecl{
				{Name: "winPos", Kind: bitflip.Int64},
				{Name: "matchDist", Kind: bitflip.Int64},
				{Name: "matchLen", Kind: bitflip.Int64},
				{Name: "flags", Kind: bitflip.Int64},
				{Name: "literals", Kind: bitflip.Int64},
				{Name: "matches", Kind: bitflip.Int64},
				{Name: "outCount", Kind: bitflip.Int64},
				{Name: "dictSize", Kind: bitflip.Int64},
			},
		},
	}
}

// TestCases implements propane.Target: each test case is a distinct set
// of input files derived from the seed (§VI-C).
func (System) TestCases(n int, seed uint64) []propane.TestCase {
	tcs := make([]propane.TestCase, 0, n)
	for i := 0; i < n; i++ {
		tcs = append(tcs, propane.TestCase{
			ID:   i,
			Seed: seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15),
		})
	}
	return tcs
}

// Outcome is the observable output of one archive-extract run.
type Outcome struct {
	// ArchiveDigest summarises the produced archive bytes.
	ArchiveDigest uint64
	// RecoveredDigest summarises the recovered file contents.
	RecoveredDigest uint64
}

// Failed implements propane.Target: a run fails when the archive or the
// recovered content differs from the golden run (§VI-F).
func (System) Failed(_ propane.TestCase, golden, observed any) bool {
	g, ok1 := golden.(Outcome)
	o, ok2 := observed.(Outcome)
	if !ok1 || !ok2 {
		return true
	}
	return g != o
}

// fhandle is the FHandle module state: the archive container layer.
type fhandle struct {
	fileIndex  int64
	origSize   int64
	compSize   int64
	fileCRC    int64 // content checksum (logged, not stored in the container)
	archOffset int64
	headerVer  int64
	codecID    int64
	bytesIn    int64   // cumulative input bytes (statistics only)
	bytesOut   int64   // cumulative output bytes (statistics only)
	filesDone  int64   // files completed so far (statistics only)
	ratioPct   float64 // running compression ratio (statistics only)
}

func (f *fhandle) varRefs() []propane.VarRef {
	return []propane.VarRef{
		propane.Int64Ref("fileIndex", &f.fileIndex),
		propane.Int64Ref("origSize", &f.origSize),
		propane.Int64Ref("compSize", &f.compSize),
		propane.Int64Ref("fileCRC", &f.fileCRC),
		propane.Int64Ref("archOffset", &f.archOffset),
		propane.Int64Ref("headerVer", &f.headerVer),
		propane.Int64Ref("codecID", &f.codecID),
		propane.Int64Ref("bytesIn", &f.bytesIn),
		propane.Int64Ref("bytesOut", &f.bytesOut),
		propane.Int64Ref("filesDone", &f.filesDone),
		propane.Float64Ref("ratioPct", &f.ratioPct),
	}
}

func (d *decoder) varRefs() []propane.VarRef {
	return []propane.VarRef{
		propane.Int64Ref("winPos", &d.winPos),
		propane.Int64Ref("matchDist", &d.matchDist),
		propane.Int64Ref("matchLen", &d.matchLen),
		propane.Int64Ref("flags", &d.flags),
		propane.Int64Ref("literals", &d.literals),
		propane.Int64Ref("matches", &d.matches),
		propane.Int64Ref("outCount", &d.outCount),
		propane.Int64Ref("dictSize", &d.dictSize),
	}
}

// Run implements propane.Target: archive all input files, then extract
// and verify them. FHandle activates once per file while archiving;
// LDecode activates once per file while extracting.
func (s System) Run(tc propane.TestCase, probe propane.Probe) (any, error) {
	return s.exec(s.newRunState(tc), probe, nil, -1, 0, 0)
}

// Stages of one run.
const (
	stageArchive = iota
	stageExtract
)

// runState is the complete resumable execution state of one run: the
// stage/file/phase position, both module states, the codec state (solid
// dictionary on both sides), the archive built so far with rolling
// digests, the rolling digests of recovered content, and any value
// pending between paired visits.
type runState struct {
	stage int // stageArchive or stageExtract
	file  int // current file index within the stage, 0-based
	phase int // next phase to execute for the file (see exec)

	fh  fhandle
	enc compressor
	dec decoder

	// archive is the container built during stageArchive and read-only
	// during stageExtract. archD0/archD1 are rolling digests of its
	// bytes, maintained on append so Digest never rehashes the archive.
	archive        []byte
	archD0, archD1 uint64

	// Extraction cursor: member count parsed from the superblock and
	// the current read offset.
	count   uint32
	readPos int

	// recD0 is digest-compatible with digest64 over the recovered files
	// (8-byte LE length prefix, then content, per file) and becomes
	// Outcome.RecoveredDigest; recD1 is an independent second stream for
	// Digest collision strength.
	recD0, recD1 uint64

	// Values pending between paired Entry/Exit visits. Neither is
	// mutated in place after creation, so clones may share them.
	pendingComp []byte // compressed member, FHandle Entry → Exit
	pendingData []byte // decompressed member, LDecode Entry → Exit
	pendingErr  error  // decompressFile error, LDecode Entry → Exit

	// files is the synthetic input set, read-only for the whole run and
	// shared between clones.
	files [][]byte

	// Cached per-run VarRef slices (closures capture fields of this
	// struct, so they are rebuilt lazily per runState and never cloned).
	fhVars, decVars []propane.VarRef
}

const (
	digestBasis0 = 14695981039346656037
	digestBasis1 = 0x9e3779b97f4a7c15
	digestPrime  = 1099511628211
)

func (s System) newRunState(tc propane.TestCase) *runState {
	st := &runState{
		fh:      fhandle{headerVer: headerVersion, codecID: codecLZSS},
		dec:     *newDecoder(),
		archive: make([]byte, 0, 8*1024),
		archD0:  digestBasis0,
		archD1:  digestBasis1,
		recD0:   digestBasis0,
		recD1:   digestBasis1,
		files:   s.generateFiles(tc.Seed),
	}
	st.appendArch([]byte(archMagic))
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(st.files)))
	st.appendArch(tmp[:])
	st.padArch()
	return st
}

// appendArch appends bytes to the archive, folding them into the
// rolling archive digests.
func (r *runState) appendArch(p []byte) {
	r.archive = append(r.archive, p...)
	d0, d1 := r.archD0, r.archD1
	for _, b := range p {
		d0 = (d0 ^ uint64(b)) * digestPrime
		d1 = (d1 ^ uint64(b)) * digestPrime
	}
	r.archD0, r.archD1 = d0, d1
}

func (r *runState) appendArchU32(v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	r.appendArch(tmp[:])
}

func (r *runState) appendArchU64(v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	r.appendArch(tmp[:])
}

// padArch zero-pads the archive to the container's 64-byte block size.
func (r *runState) padArch() {
	var zeros [64]byte
	if rem := len(r.archive) % 64; rem != 0 {
		r.appendArch(zeros[:64-rem])
	}
}

// foldRecovered folds one recovered file into the rolling recovered
// digests using digest64's framing (LE length prefix, then content).
func (r *runState) foldRecovered(data []byte) {
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(data)))
	d0, d1 := r.recD0, r.recD1
	for _, b := range lenBuf {
		d0 = (d0 ^ uint64(b)) * digestPrime
		d1 = (d1 ^ uint64(b)) * digestPrime
	}
	for _, b := range data {
		d0 = (d0 ^ uint64(b)) * digestPrime
		d1 = (d1 ^ uint64(b)) * digestPrime
	}
	r.recD0, r.recD1 = d0, d1
}

// Clone implements propane.State. The compressor's solid dictionary is
// rewritten in place by compressFile and the archive is append-mutated
// during stageArchive, so both are deep-copied; during stageExtract the
// archive is read-only and shared (and the dictionary is already nil —
// exec drops it at the stage transition). files and the pending slices
// are read-only and always shared.
func (r *runState) Clone() propane.State {
	c := *r // dec's window is an array: copied by value
	c.fhVars, c.decVars = nil, nil
	if r.stage == stageArchive {
		c.enc.history = append([]byte(nil), r.enc.history...)
		c.archive = append(make([]byte, 0, cap(r.archive)), r.archive...)
	}
	return &c
}

// Digest implements propane.State, fingerprinting every field that
// determines the remainder of the run. The input files are a pure
// function of the test case and are excluded; the archive is covered by
// its rolling digests.
func (r *runState) Digest() propane.Digest {
	h := propane.NewStateHasher()
	h.Int(r.stage)
	h.Int(r.file)
	h.Int(r.phase)
	h.Int64(r.fh.fileIndex)
	h.Int64(r.fh.origSize)
	h.Int64(r.fh.compSize)
	h.Int64(r.fh.fileCRC)
	h.Int64(r.fh.archOffset)
	h.Int64(r.fh.headerVer)
	h.Int64(r.fh.codecID)
	h.Int64(r.fh.bytesIn)
	h.Int64(r.fh.bytesOut)
	h.Int64(r.fh.filesDone)
	h.Float64(r.fh.ratioPct)
	h.Bytes(r.enc.history)
	h.Int64(r.dec.winPos)
	h.Int64(r.dec.matchDist)
	h.Int64(r.dec.matchLen)
	h.Int64(r.dec.flags)
	h.Int64(r.dec.literals)
	h.Int64(r.dec.matches)
	h.Int64(r.dec.outCount)
	h.Int64(r.dec.dictSize)
	h.Bytes(r.dec.window[:])
	h.Int(len(r.archive))
	h.Uint64(r.archD0)
	h.Uint64(r.archD1)
	h.Uint64(uint64(r.count))
	h.Int(r.readPos)
	h.Uint64(r.recD0)
	h.Uint64(r.recD1)
	h.Bytes(r.pendingComp)
	h.Bytes(r.pendingData)
	h.Bool(r.pendingErr != nil)
	return h.Sum()
}

// refs returns the cached VarRef slices, building them on first use.
// Golden and snapshot runs pass NopProbe and never call this, which
// skips the per-run closure allocations entirely.
func (r *runState) refs() (fhVars, decVars []propane.VarRef) {
	if r.fhVars == nil {
		r.fhVars = r.fh.varRefs()
		r.decVars = r.dec.varRefs()
	}
	return r.fhVars, r.decVars
}

// Phase indices within one per-file step of either stage. Each phase
// executes "everything up to and including the next instrumentation
// visit's work", so a snapshot taken at (stage, file, phase) resumes
// with that phase's visit as the next visit issued.
const (
	phaseEntry = iota // Entry visit + compress/decompress work
	phaseExit         // Exit visit + archive append / output fold
)

// exec advances the run from st's position to completion, issuing probe
// visits in the canonical order. With stopStage >= 0 it instead returns
// (nil, nil) the moment st reaches (stopStage, stopFile, stopPhase) —
// before that phase's visit — which is how Snapshot positions a state.
// ctl, when non-nil, is consulted at the end of every completed
// per-file step of either stage.
func (s System) exec(st *runState, probe propane.Probe, ctl *propane.RunControl, stopStage, stopFile, stopPhase int) (any, error) {
	_, nop := probe.(propane.NopProbe)
	var fhVars, decVars []propane.VarRef
	if !nop {
		fhVars, decVars = st.refs()
	}
	step := 0

	// --- Archiving stage (FHandle instrumented) ---
	if st.stage == stageArchive {
		for st.file < len(st.files) {
			i := st.file
			data := st.files[i]

			if st.phase == phaseEntry {
				if stopStage == stageArchive && st.file == stopFile && stopPhase == phaseEntry {
					return nil, nil
				}
				// Preconditions of the per-file container step.
				st.fh.fileIndex = int64(i)
				st.fh.origSize = int64(len(data))
				st.fh.fileCRC = int64(crc8fnv(data))
				st.fh.compSize = 0
				st.fh.archOffset = int64(len(st.archive))

				if !nop {
					probe.Visit(ModuleFHandle, propane.Entry, fhVars)
				}

				st.pendingComp = st.enc.compressFile(data)
				st.fh.compSize = int64(len(st.pendingComp))
				st.fh.bytesIn += st.fh.origSize
				st.fh.bytesOut += st.fh.compSize
				st.fh.filesDone++
				if st.fh.bytesIn > 0 {
					st.fh.ratioPct = 100 * float64(st.fh.bytesOut) / float64(st.fh.bytesIn)
				}
				st.phase = phaseExit
			}
			if st.phase == phaseExit {
				if stopStage == stageArchive && st.file == stopFile && stopPhase == phaseExit {
					return nil, nil
				}
				if !nop {
					probe.Visit(ModuleFHandle, propane.Exit, fhVars)
				}

				// The header is written from module state AFTER the exit
				// point, so exit-time corruption propagates into the
				// archive.
				st.appendArchU32(uint32(st.fh.headerVer))
				st.appendArchU32(uint32(st.fh.codecID))
				st.appendArchU64(uint64(st.fh.origSize))
				st.appendArchU64(uint64(st.fh.compSize))
				st.appendArchU64(uint64(st.fh.archOffset))
				st.appendArch(st.pendingComp)
				st.padArch()
				st.pendingComp = nil
				st.phase = phaseEntry
				st.file++
				step++
				if ctl.Checkpoint(step, st) {
					return nil, propane.ErrConverged
				}
			}
		}

		// --- Stage transition: open the archive for extraction ---
		if len(st.archive) < len(archMagic)+4 || string(st.archive[:4]) != archMagic {
			return nil, fmt.Errorf("sevenzip: bad archive magic")
		}
		st.count = binary.LittleEndian.Uint32(st.archive[len(archMagic):])
		st.readPos = 64 // the superblock is padded to one container block
		st.stage = stageExtract
		st.file = 0
		st.phase = phaseEntry
		// The solid dictionary is dead once the archive is sealed: the
		// extraction stage never reads it, so dropping it here keeps it
		// out of every extract-stage Clone and Digest.
		st.enc.history = nil
	}

	// --- Extraction stage (LDecode instrumented) ---
	for st.file < int(st.count) {
		i := st.file

		if st.phase == phaseEntry {
			if stopStage == stageExtract && st.file == stopFile && stopPhase == phaseEntry {
				return nil, nil
			}
			if st.readPos+32 > len(st.archive) {
				return nil, fmt.Errorf("sevenzip: truncated header for file %d", i)
			}
			ver := binary.LittleEndian.Uint32(st.archive[st.readPos:])
			codec := binary.LittleEndian.Uint32(st.archive[st.readPos+4:])
			origSize := int64(binary.LittleEndian.Uint64(st.archive[st.readPos+8:]))
			compSize := int64(binary.LittleEndian.Uint64(st.archive[st.readPos+16:]))
			offset := int64(binary.LittleEndian.Uint64(st.archive[st.readPos+24:]))
			st.readPos += 32
			if ver != headerVersion {
				return nil, fmt.Errorf("sevenzip: unsupported header version %d", ver)
			}
			if codec != codecLZSS {
				return nil, fmt.Errorf("sevenzip: unsupported codec %d", codec)
			}
			if offset != int64(st.readPos-32) {
				return nil, fmt.Errorf("sevenzip: bad offset %d for file %d", offset, i)
			}
			if compSize < 0 || int64(st.readPos)+compSize > int64(len(st.archive)) {
				return nil, fmt.Errorf("sevenzip: bad compressed size %d", compSize)
			}
			comp := st.archive[st.readPos : int64(st.readPos)+compSize]
			st.readPos += int(compSize)
			st.readPos = (st.readPos + 63) / 64 * 64

			if !nop {
				probe.Visit(ModuleLDecode, propane.Entry, decVars)
			}
			st.pendingData, st.pendingErr = st.dec.decompressFile(comp, origSize)
			st.phase = phaseExit
		}
		if st.phase == phaseExit {
			if stopStage == stageExtract && st.file == stopFile && stopPhase == phaseExit {
				return nil, nil
			}
			if !nop {
				probe.Visit(ModuleLDecode, propane.Exit, decVars)
			}
			if st.pendingErr != nil {
				return nil, fmt.Errorf("sevenzip: file %d: %w", i, st.pendingErr)
			}
			st.foldRecovered(st.pendingData)
			st.pendingData, st.pendingErr = nil, nil
			st.phase = phaseEntry
			st.file++
			step++
			if ctl.Checkpoint(step, st) {
				return nil, propane.ErrConverged
			}
		}
	}

	return Outcome{
		ArchiveDigest:   digest64(st.archive),
		RecoveredDigest: st.recD0,
	}, nil
}

var _ propane.Forkable = System{}

// Snapshot implements propane.Forkable: FHandle activates once per file
// while archiving and LDecode once per file while extracting, so the
// activation-th visit of (module, at) occurs at a fixed (stage, file,
// phase) position.
func (s System) Snapshot(tc propane.TestCase, module string, at propane.Location, activation int) (propane.State, bool, error) {
	var stage int
	switch module {
	case ModuleFHandle:
		stage = stageArchive
	case ModuleLDecode:
		stage = stageExtract
	default:
		return nil, false, nil
	}
	phase := phaseEntry
	if at == propane.Exit {
		phase = phaseExit
	}
	if activation < 1 || activation > s.filesPerCase() {
		return nil, false, nil
	}
	file := activation - 1
	st := s.newRunState(tc)
	if _, err := s.exec(st, propane.NopProbe{}, nil, stage, file, phase); err != nil {
		return nil, false, err
	}
	if st.stage != stage || st.file != file || st.phase != phase {
		return nil, false, nil
	}
	return st, true, nil
}

// RunFrom implements propane.Forkable.
func (s System) RunFrom(st propane.State, probe propane.Probe, ctl *propane.RunControl) (any, error) {
	rs, ok := st.(*runState)
	if !ok {
		return nil, fmt.Errorf("sevenzip: foreign state %T", st)
	}
	return s.exec(rs, probe, ctl, -1, 0, 0)
}

// generateFiles produces the deterministic synthetic file set for a
// test case: text-like content with repeated phrases (compressible) and
// a binary tail (less compressible), sizes varying around MeanFileSize.
func (s System) generateFiles(seed uint64) [][]byte {
	rng := stats.NewRNG(seed)
	words := []string{
		"fault", "injection", "detector", "predicate", "module",
		"archive", "window", "decode", "entropy", "golden",
	}
	files := make([][]byte, s.filesPerCase())
	for i := range files {
		// Sizes are padded to 64-byte blocks, as the container stores
		// block-aligned members.
		size := s.meanFileSize()/2 + rng.Intn(s.meanFileSize())
		size = (size + 63) / 64 * 64
		buf := make([]byte, 0, size+16)
		for len(buf) < size*3/4 {
			w := words[rng.Intn(len(words))]
			buf = append(buf, w...)
			buf = append(buf, ' ')
		}
		for len(buf) < size {
			buf = append(buf, byte(rng.Uint64()))
		}
		files[i] = buf
	}
	return files
}
