package sevenzip

import (
	"encoding/binary"
	"fmt"

	"edem/internal/bitflip"
	"edem/internal/propane"
	"edem/internal/stats"
)

// Module names as they appear in Table II.
const (
	ModuleFHandle = "FHandle"
	ModuleLDecode = "LDecode"
)

// Archive format constants.
const (
	archMagic     = "7ZGO"
	headerVersion = 4
	codecLZSS     = 3
)

// System is the 7-Zip-analog target: each run archives a set of input
// files and then extracts them, recovering the original content
// (paper §VI-C). FilesPerCase controls the workload size; the paper
// uses 25 files per test case.
type System struct {
	// FilesPerCase is the number of files archived per test case
	// (default 10).
	FilesPerCase int
	// MeanFileSize is the approximate size of each synthetic file in
	// bytes (default 768).
	MeanFileSize int
}

var _ propane.Target = System{}

func (s System) filesPerCase() int {
	if s.FilesPerCase <= 0 {
		return 10
	}
	return s.FilesPerCase
}

func (s System) meanFileSize() int {
	if s.MeanFileSize <= 0 {
		return 768
	}
	return s.MeanFileSize
}

// Name implements propane.Target.
func (System) Name() string { return "7-Zip" }

// Modules implements propane.Target.
func (System) Modules() []propane.ModuleInfo {
	return []propane.ModuleInfo{
		{
			Name: ModuleFHandle,
			Vars: []propane.VarDecl{
				{Name: "fileIndex", Kind: bitflip.Int64},
				{Name: "origSize", Kind: bitflip.Int64},
				{Name: "compSize", Kind: bitflip.Int64},
				{Name: "fileCRC", Kind: bitflip.Int64},
				{Name: "archOffset", Kind: bitflip.Int64},
				{Name: "headerVer", Kind: bitflip.Int64},
				{Name: "codecID", Kind: bitflip.Int64},
				{Name: "bytesIn", Kind: bitflip.Int64},
				{Name: "bytesOut", Kind: bitflip.Int64},
				{Name: "filesDone", Kind: bitflip.Int64},
				{Name: "ratioPct", Kind: bitflip.Float64},
			},
		},
		{
			Name: ModuleLDecode,
			Vars: []propane.VarDecl{
				{Name: "winPos", Kind: bitflip.Int64},
				{Name: "matchDist", Kind: bitflip.Int64},
				{Name: "matchLen", Kind: bitflip.Int64},
				{Name: "flags", Kind: bitflip.Int64},
				{Name: "literals", Kind: bitflip.Int64},
				{Name: "matches", Kind: bitflip.Int64},
				{Name: "outCount", Kind: bitflip.Int64},
				{Name: "dictSize", Kind: bitflip.Int64},
			},
		},
	}
}

// TestCases implements propane.Target: each test case is a distinct set
// of input files derived from the seed (§VI-C).
func (System) TestCases(n int, seed uint64) []propane.TestCase {
	tcs := make([]propane.TestCase, 0, n)
	for i := 0; i < n; i++ {
		tcs = append(tcs, propane.TestCase{
			ID:   i,
			Seed: seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15),
		})
	}
	return tcs
}

// Outcome is the observable output of one archive-extract run.
type Outcome struct {
	// ArchiveDigest summarises the produced archive bytes.
	ArchiveDigest uint64
	// RecoveredDigest summarises the recovered file contents.
	RecoveredDigest uint64
}

// Failed implements propane.Target: a run fails when the archive or the
// recovered content differs from the golden run (§VI-F).
func (System) Failed(_ propane.TestCase, golden, observed any) bool {
	g, ok1 := golden.(Outcome)
	o, ok2 := observed.(Outcome)
	if !ok1 || !ok2 {
		return true
	}
	return g != o
}

// fhandle is the FHandle module state: the archive container layer.
type fhandle struct {
	fileIndex  int64
	origSize   int64
	compSize   int64
	fileCRC    int64 // content checksum (logged, not stored in the container)
	archOffset int64
	headerVer  int64
	codecID    int64
	bytesIn    int64   // cumulative input bytes (statistics only)
	bytesOut   int64   // cumulative output bytes (statistics only)
	filesDone  int64   // files completed so far (statistics only)
	ratioPct   float64 // running compression ratio (statistics only)
}

func (f *fhandle) varRefs() []propane.VarRef {
	return []propane.VarRef{
		propane.Int64Ref("fileIndex", &f.fileIndex),
		propane.Int64Ref("origSize", &f.origSize),
		propane.Int64Ref("compSize", &f.compSize),
		propane.Int64Ref("fileCRC", &f.fileCRC),
		propane.Int64Ref("archOffset", &f.archOffset),
		propane.Int64Ref("headerVer", &f.headerVer),
		propane.Int64Ref("codecID", &f.codecID),
		propane.Int64Ref("bytesIn", &f.bytesIn),
		propane.Int64Ref("bytesOut", &f.bytesOut),
		propane.Int64Ref("filesDone", &f.filesDone),
		propane.Float64Ref("ratioPct", &f.ratioPct),
	}
}

func (d *decoder) varRefs() []propane.VarRef {
	return []propane.VarRef{
		propane.Int64Ref("winPos", &d.winPos),
		propane.Int64Ref("matchDist", &d.matchDist),
		propane.Int64Ref("matchLen", &d.matchLen),
		propane.Int64Ref("flags", &d.flags),
		propane.Int64Ref("literals", &d.literals),
		propane.Int64Ref("matches", &d.matches),
		propane.Int64Ref("outCount", &d.outCount),
		propane.Int64Ref("dictSize", &d.dictSize),
	}
}

// Run implements propane.Target: archive all input files, then extract
// and verify them. FHandle activates once per file while archiving;
// LDecode activates once per file while extracting.
func (s System) Run(tc propane.TestCase, probe propane.Probe) (any, error) {
	files := s.generateFiles(tc.Seed)

	// --- Archiving phase (FHandle instrumented) ---
	fh := &fhandle{headerVer: headerVersion, codecID: codecLZSS}
	fhVars := fh.varRefs()
	enc := &compressor{}
	archive := make([]byte, 0, 8*1024)
	archive = append(archive, archMagic...)
	archive = appendU32(archive, uint32(len(files)))
	archive = pad64(archive)

	for i, data := range files {
		// Preconditions of the per-file container step.
		fh.fileIndex = int64(i)
		fh.origSize = int64(len(data))
		fh.fileCRC = int64(crc8fnv(data))
		fh.compSize = 0
		fh.archOffset = int64(len(archive))

		probe.Visit(ModuleFHandle, propane.Entry, fhVars)

		comp := enc.compressFile(data)
		fh.compSize = int64(len(comp))
		fh.bytesIn += fh.origSize
		fh.bytesOut += fh.compSize
		fh.filesDone++
		if fh.bytesIn > 0 {
			fh.ratioPct = 100 * float64(fh.bytesOut) / float64(fh.bytesIn)
		}

		probe.Visit(ModuleFHandle, propane.Exit, fhVars)

		// The header is written from module state AFTER the exit point,
		// so exit-time corruption propagates into the archive.
		archive = appendU32(archive, uint32(fh.headerVer))
		archive = appendU32(archive, uint32(fh.codecID))
		archive = appendU64(archive, uint64(fh.origSize))
		archive = appendU64(archive, uint64(fh.compSize))
		archive = appendU64(archive, uint64(fh.archOffset))
		archive = append(archive, comp...)
		archive = pad64(archive)
	}

	// --- Extraction phase (LDecode instrumented) ---
	dec := newDecoder()
	decVars := dec.varRefs()
	recovered := make([][]byte, 0, len(files))

	if len(archive) < len(archMagic)+4 || string(archive[:4]) != archMagic {
		return nil, fmt.Errorf("sevenzip: bad archive magic")
	}
	count := binary.LittleEndian.Uint32(archive[len(archMagic):])
	pos := 64 // the superblock is padded to one container block
	for i := uint32(0); i < count; i++ {
		if pos+32 > len(archive) {
			return nil, fmt.Errorf("sevenzip: truncated header for file %d", i)
		}
		ver := binary.LittleEndian.Uint32(archive[pos:])
		codec := binary.LittleEndian.Uint32(archive[pos+4:])
		origSize := int64(binary.LittleEndian.Uint64(archive[pos+8:]))
		compSize := int64(binary.LittleEndian.Uint64(archive[pos+16:]))
		offset := int64(binary.LittleEndian.Uint64(archive[pos+24:]))
		pos += 32
		if ver != headerVersion {
			return nil, fmt.Errorf("sevenzip: unsupported header version %d", ver)
		}
		if codec != codecLZSS {
			return nil, fmt.Errorf("sevenzip: unsupported codec %d", codec)
		}
		if offset != int64(pos-32) {
			return nil, fmt.Errorf("sevenzip: bad offset %d for file %d", offset, i)
		}
		if compSize < 0 || int64(pos)+compSize > int64(len(archive)) {
			return nil, fmt.Errorf("sevenzip: bad compressed size %d", compSize)
		}
		comp := archive[pos : int64(pos)+compSize]
		pos += int(compSize)
		pos = (pos + 63) / 64 * 64

		probe.Visit(ModuleLDecode, propane.Entry, decVars)
		data, err := dec.decompressFile(comp, origSize)
		probe.Visit(ModuleLDecode, propane.Exit, decVars)
		if err != nil {
			return nil, fmt.Errorf("sevenzip: file %d: %w", i, err)
		}
		recovered = append(recovered, data)
	}

	return Outcome{
		ArchiveDigest:   digest64(archive),
		RecoveredDigest: digest64(recovered...),
	}, nil
}

// generateFiles produces the deterministic synthetic file set for a
// test case: text-like content with repeated phrases (compressible) and
// a binary tail (less compressible), sizes varying around MeanFileSize.
func (s System) generateFiles(seed uint64) [][]byte {
	rng := stats.NewRNG(seed)
	words := []string{
		"fault", "injection", "detector", "predicate", "module",
		"archive", "window", "decode", "entropy", "golden",
	}
	files := make([][]byte, s.filesPerCase())
	for i := range files {
		// Sizes are padded to 64-byte blocks, as the container stores
		// block-aligned members.
		size := s.meanFileSize()/2 + rng.Intn(s.meanFileSize())
		size = (size + 63) / 64 * 64
		buf := make([]byte, 0, size+16)
		for len(buf) < size*3/4 {
			w := words[rng.Intn(len(words))]
			buf = append(buf, w...)
			buf = append(buf, ' ')
		}
		for len(buf) < size {
			buf = append(buf, byte(rng.Uint64()))
		}
		files[i] = buf
	}
	return files
}

// pad64 zero-pads the archive to the container's 64-byte block size.
func pad64(b []byte) []byte {
	for len(b)%64 != 0 {
		b = append(b, 0)
	}
	return b
}

func appendU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}
