package sevenzip

import (
	"bytes"
	"testing"
	"testing/quick"

	"edem/internal/propane"
	"edem/internal/stats"
)

func roundTrip(t *testing.T, files [][]byte) {
	t.Helper()
	enc := &compressor{}
	dec := newDecoder()
	for i, data := range files {
		comp := enc.compressFile(data)
		got, err := dec.decompressFile(comp, int64(len(data)))
		if err != nil {
			t.Fatalf("file %d: decompress: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("file %d: round trip mismatch (%d vs %d bytes)", i, len(got), len(data))
		}
	}
}

func TestCodecRoundTripBasics(t *testing.T) {
	roundTrip(t, [][]byte{
		[]byte("hello hello hello hello"),
		[]byte("a"),
		bytes.Repeat([]byte("abc"), 500),
		{},
		[]byte("the quick brown fox jumps over the lazy dog"),
	})
}

func TestCodecRoundTripSolid(t *testing.T) {
	// Later files reference earlier files' content through the solid
	// dictionary; the shared phrase must still decompress correctly and
	// compress smaller the second time.
	phrase := bytes.Repeat([]byte("fault injection analysis "), 40)
	enc := &compressor{}
	c1 := enc.compressFile(phrase)
	c2 := enc.compressFile(phrase)
	if len(c2) >= len(c1) {
		t.Errorf("solid dictionary gave no gain: %d then %d", len(c1), len(c2))
	}
	dec := newDecoder()
	for i, comp := range [][]byte{c1, c2} {
		got, err := dec.decompressFile(comp, int64(len(phrase)))
		if err != nil {
			t.Fatalf("file %d: %v", i, err)
		}
		if !bytes.Equal(got, phrase) {
			t.Fatalf("file %d: mismatch", i)
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nFiles uint8) bool {
		rng := stats.NewRNG(seed)
		n := int(nFiles%5) + 1
		enc := &compressor{}
		dec := newDecoder()
		for i := 0; i < n; i++ {
			size := rng.Intn(2000) + 1
			data := make([]byte, size)
			for j := range data {
				if rng.Float64() < 0.7 {
					data[j] = byte('a' + rng.Intn(4)) // compressible region
				} else {
					data[j] = byte(rng.Uint64())
				}
			}
			comp := enc.compressFile(data)
			got, err := dec.decompressFile(comp, int64(len(data)))
			if err != nil || !bytes.Equal(got, data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCodecCompresses(t *testing.T) {
	data := bytes.Repeat([]byte("abcdefgh"), 200)
	enc := &compressor{}
	comp := enc.compressFile(data)
	if len(comp) >= len(data)/2 {
		t.Errorf("compressed %d -> %d: expected at least 2x on repetitive data", len(data), len(comp))
	}
}

func TestDecompressRejectsCorruptStreams(t *testing.T) {
	dec := newDecoder()
	// Truncated flags.
	if _, err := dec.decompressFile(nil, 5); err == nil {
		t.Error("empty stream should fail")
	}
	// Negative size.
	if _, err := dec.decompressFile([]byte{0}, -1); err == nil {
		t.Error("negative size should fail")
	}
	// Absurd size.
	if _, err := dec.decompressFile([]byte{0}, 1<<40); err == nil {
		t.Error("absurd size should fail")
	}
	// Match with zero distance: flag byte 0x01 then token 0x00 0x03.
	dec2 := newDecoder()
	if _, err := dec2.decompressFile([]byte{0x01, 0x00, 0x03}, 10); err == nil {
		t.Error("zero-distance match should fail")
	}
}

func TestCRC8(t *testing.T) {
	a := crc8fnv([]byte("hello"))
	b := crc8fnv([]byte("hellp"))
	if a == b {
		t.Error("single-byte change should move the checksum (for this input)")
	}
	if crc8fnv(nil) != crc8fnv([]byte{}) {
		t.Error("empty inputs must agree")
	}
}

func TestDigest64SeparatesLengths(t *testing.T) {
	// The digest must distinguish {"ab","c"} from {"a","bc"}.
	if digest64([]byte("ab"), []byte("c")) == digest64([]byte("a"), []byte("bc")) {
		t.Error("digest ignores part boundaries")
	}
}

func TestRunGoldenDeterminism(t *testing.T) {
	s := System{}
	tc := s.TestCases(3, 7)[1]
	o1, err := s.Run(tc, propane.NopProbe{})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := s.Run(tc, propane.NopProbe{})
	if err != nil {
		t.Fatal(err)
	}
	if o1 != o2 {
		t.Fatal("golden runs are not reproducible")
	}
	if s.Failed(tc, o1, o2) {
		t.Fatal("identical outputs must not fail")
	}
}

func TestDistinctTestCasesDiffer(t *testing.T) {
	s := System{}
	tcs := s.TestCases(2, 7)
	o1, err := s.Run(tcs[0], propane.NopProbe{})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := s.Run(tcs[1], propane.NopProbe{})
	if err != nil {
		t.Fatal(err)
	}
	if o1 == o2 {
		t.Fatal("distinct test cases produced identical outputs")
	}
}

func TestModuleContract(t *testing.T) {
	s := System{}
	mods := s.Modules()
	if len(mods) != 2 || mods[0].Name != ModuleFHandle || mods[1].Name != ModuleLDecode {
		t.Fatalf("modules = %+v", mods)
	}
	// Probe visits occur once per file per location for both modules.
	counts := map[visitKey]int{}
	probe := countingProbe{counts: counts}
	tc := s.TestCases(1, 1)[0]
	if _, err := s.Run(tc, probe); err != nil {
		t.Fatal(err)
	}
	want := s.filesPerCase()
	for _, k := range []visitKey{
		{ModuleFHandle, propane.Entry}, {ModuleFHandle, propane.Exit},
		{ModuleLDecode, propane.Entry}, {ModuleLDecode, propane.Exit},
	} {
		if counts[k] != want {
			t.Errorf("%s %s visited %d times, want %d", k.mod, k.loc, counts[k], want)
		}
	}
}

type visitKey struct {
	mod string
	loc propane.Location
}

type countingProbe struct {
	counts map[visitKey]int
}

func (p countingProbe) Visit(mod string, loc propane.Location, _ []propane.VarRef) {
	p.counts[visitKey{mod, loc}]++
}

func TestFailedTypeSafety(t *testing.T) {
	s := System{}
	if !s.Failed(propane.TestCase{}, "not an outcome", Outcome{}) {
		t.Fatal("wrong golden type must count as failure")
	}
	if !s.Failed(propane.TestCase{}, Outcome{}, 42) {
		t.Fatal("wrong observed type must count as failure")
	}
}

func TestFileSizesAreBlockAligned(t *testing.T) {
	s := System{}
	for _, f := range s.generateFiles(123) {
		if len(f)%64 != 0 {
			t.Fatalf("file size %d not block aligned", len(f))
		}
		if len(f) == 0 {
			t.Fatal("empty file generated")
		}
	}
}
