// Package sevenzip implements the 7-Zip-analog target system of the
// paper (§VI-B): a real archiver built on a solid LZSS sliding-window
// codec (the dictionary persists across files, as in 7-Zip's solid
// archives), exercised by an archive-then-extract procedure over sets
// of input files. Two modules are instrumented, matching Table II:
// FHandle (the archive container / file handling layer) and LDecode
// (the sliding-window match decoder).
//
// Role in the methodology: a Step 1 system under injection (datasets
// 7Z-A*/7Z-B* of Table II). Concurrency: System is a stateless value —
// every Run call generates its workload from the test case seed and
// keeps all codec state local to the call — so campaign workers share
// one System and call Run concurrently; the per-run Probe is the only
// externally supplied state.
package sevenzip

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Codec parameters. windowSize must be a power of two.
const (
	windowSize = 4096
	minMatch   = 3
	maxMatch   = 18
	hashBits   = 12
	maxChain   = 16
)

// Compression errors.
var (
	ErrCorrupt  = errors.New("sevenzip: corrupt compressed stream")
	ErrTooLarge = errors.New("sevenzip: input exceeds supported size")
)

// compressor encodes files into LZSS token streams against a solid
// dictionary: matches in file k may reference the tail of files < k.
type compressor struct {
	history []byte // up to windowSize bytes of previously encoded output
}

// compressFile encodes data with greedy LZSS: groups of eight tokens
// share a flag byte; a set flag bit means a (distance, length) match, a
// clear bit a literal. Matches are found through a hash-head / chain
// table bounded by maxChain, keeping compression fast enough for large
// fault-injection campaigns.
func (c *compressor) compressFile(data []byte) []byte {
	if len(data) == 0 {
		return nil
	}
	// Work over history + data; emit tokens only for the data region.
	buf := make([]byte, 0, len(c.history)+len(data))
	buf = append(buf, c.history...)
	buf = append(buf, data...)
	start := len(c.history)

	out := make([]byte, 0, len(data)/2+16)
	head := make([]int32, 1<<hashBits)
	prev := make([]int32, len(buf))
	for i := range head {
		head[i] = -1
	}
	hash := func(i int) uint32 {
		if i+2 >= len(buf) {
			return 0
		}
		h := uint32(buf[i])<<16 | uint32(buf[i+1])<<8 | uint32(buf[i+2])
		return (h * 2654435761) >> (32 - hashBits)
	}
	insert := func(i int) {
		if i+minMatch > len(buf) {
			return
		}
		h := hash(i)
		prev[i] = head[h]
		head[h] = int32(i)
	}
	for i := 0; i < start; i++ {
		insert(i)
	}

	var (
		flagPos = -1
		flagBit = 8
	)
	emitFlag := func(set bool) {
		if flagBit == 8 {
			flagPos = len(out)
			out = append(out, 0)
			flagBit = 0
		}
		if set {
			out[flagPos] |= 1 << uint(flagBit)
		}
		flagBit++
	}

	pos := start
	for pos < len(buf) {
		bestLen, bestDist := 0, 0
		if pos+minMatch <= len(buf) {
			cand := head[hash(pos)]
			for chain := 0; cand >= 0 && chain < maxChain; chain++ {
				cd := int(cand)
				if pos-cd > windowSize-1 {
					break
				}
				l := 0
				maxL := maxMatch
				if rem := len(buf) - pos; rem < maxL {
					maxL = rem
				}
				for l < maxL && buf[cd+l] == buf[pos+l] {
					l++
				}
				if l > bestLen {
					bestLen, bestDist = l, pos-cd
					if l == maxL {
						break
					}
				}
				cand = prev[cd]
			}
		}
		if bestLen >= minMatch {
			emitFlag(true)
			// distance: 12 bits, length-minMatch: 4 bits.
			v := uint16(bestDist)<<4 | uint16(bestLen-minMatch)
			out = append(out, byte(v>>8), byte(v))
			for k := 0; k < bestLen; k++ {
				insert(pos + k)
			}
			pos += bestLen
		} else {
			emitFlag(false)
			out = append(out, buf[pos])
			insert(pos)
			pos++
		}
	}

	// Retain the dictionary tail for the next file.
	tail := buf
	if len(tail) > windowSize {
		tail = tail[len(tail)-windowSize:]
	}
	c.history = append(c.history[:0], tail...)
	return out
}

// decoder is the LDecode module state: a solid sliding-window decoder
// whose variables are instrumented for fault injection. The window and
// write position persist across files — exactly the property that makes
// a corrupted in-range winPos produce silently wrong output rather than
// an immediate stream error. Fields use int64 so every bit of their
// machine representation is a potential fault site.
type decoder struct {
	winPos    int64 // write position within the sliding window
	matchDist int64 // distance of the current match token
	matchLen  int64 // length of the current match token
	flags     int64 // current flag byte (diagnostic mirror)
	literals  int64 // literal tokens decoded across the archive (statistics)
	matches   int64 // match tokens decoded across the archive (statistics)
	outCount  int64 // bytes produced for the current file
	dictSize  int64 // window size; constant 4096 in this codec

	window [windowSize]byte
}

func newDecoder() *decoder {
	return &decoder{dictSize: windowSize}
}

// dictSizeSafe guards the wrap modulus against a corrupted dictionary
// size: an out-of-range value wraps at 1, surviving (with garbage
// output) instead of dividing by zero.
func (d *decoder) dictSizeSafe() int64 {
	if d.dictSize <= 0 || d.dictSize > int64(len(d.window)) {
		return 1
	}
	return d.dictSize
}

// wrap maps any (possibly corrupted) position into the window.
func (d *decoder) wrap(x int64) int64 {
	ws := d.dictSizeSafe()
	m := x % ws
	if m < 0 {
		m += ws
	}
	return m
}

// decompressFile decodes one file's LZSS stream into a buffer of
// origSize bytes, continuing the solid dictionary. Stream reads are
// bounds-checked so structural corruption yields a detectable error;
// positional corruption (winPos) yields wrong output instead.
func (d *decoder) decompressFile(comp []byte, origSize int64) ([]byte, error) {
	if origSize < 0 || origSize > 1<<30 {
		return nil, fmt.Errorf("%w: size %d", ErrTooLarge, origSize)
	}
	capHint := origSize
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	out := make([]byte, 0, capHint)
	d.outCount = 0

	pos := 0
	var flagByte byte
	bitsLeft := 0
	write := func(b byte) {
		out = append(out, b)
		d.window[d.winPos] = b
		d.winPos = d.wrap(d.winPos + 1)
		d.outCount++
	}
	for int64(len(out)) < origSize {
		// The write position is validated per token: a corrupted
		// out-of-window position is structural corruption (an index
		// bounds violation in a real decoder), while an in-window shift
		// silently desynchronises the dictionary and produces wrong
		// output instead.
		if d.winPos < 0 || d.winPos >= int64(len(d.window)) {
			return nil, fmt.Errorf("%w: window position %d out of range", ErrCorrupt, d.winPos)
		}
		if bitsLeft == 0 {
			if pos >= len(comp) {
				return nil, fmt.Errorf("%w: truncated flags", ErrCorrupt)
			}
			flagByte = comp[pos]
			pos++
			bitsLeft = 8
			d.flags = int64(flagByte)
		}
		isMatch := flagByte&1 == 1
		flagByte >>= 1
		bitsLeft--
		if isMatch {
			if pos+1 >= len(comp) {
				return nil, fmt.Errorf("%w: truncated match token", ErrCorrupt)
			}
			v := uint16(comp[pos])<<8 | uint16(comp[pos+1])
			pos += 2
			d.matchDist = int64(v >> 4)
			d.matchLen = int64(v&0xF) + minMatch
			d.matches++
			if d.matchDist <= 0 || d.matchDist >= int64(windowSize) {
				return nil, fmt.Errorf("%w: match distance %d", ErrCorrupt, d.matchDist)
			}
			src := d.winPos - d.matchDist
			for k := int64(0); k < d.matchLen; k++ {
				write(d.window[d.wrap(src+k)])
			}
		} else {
			if pos >= len(comp) {
				return nil, fmt.Errorf("%w: truncated literal", ErrCorrupt)
			}
			write(comp[pos])
			pos++
			d.literals++
		}
	}
	if d.outCount != int64(len(out)) {
		return nil, fmt.Errorf("%w: output accounting mismatch", ErrCorrupt)
	}
	return out, nil
}

// crc8fnv computes the folded FNV-1a 8-bit checksum used in file
// headers.
func crc8fnv(data []byte) uint8 {
	h := uint32(2166136261)
	for _, b := range data {
		h ^= uint32(b)
		h *= 16777619
	}
	h ^= h >> 16
	return uint8(h ^ (h >> 8))
}

// digest64 is an FNV-1a 64-bit digest used to compare run outputs.
func digest64(parts ...[]byte) uint64 {
	h := uint64(14695981039346656037)
	var lenBuf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		for _, b := range lenBuf {
			h ^= uint64(b)
			h *= 1099511628211
		}
		for _, b := range p {
			h ^= uint64(b)
			h *= 1099511628211
		}
	}
	return h
}
