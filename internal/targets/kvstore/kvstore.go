// Package kvstore implements an in-memory replicated key-value store
// target: one primary and two replicas connected by log-shipping
// replication, serving quorum reads while a deterministic request
// workload streams writes through the primary. It is the suite's first
// server-shaped target — the injected state is request-serving state
// (replication lag, shipped log entries, quorum votes), not
// batch-pipeline state.
//
// Two modules are instrumented. Replicate is the log-shipping applier:
// its variables are the log sequence being assigned, the operation
// being applied and the per-replica shipping lags, so an injected fault
// corrupts what gets written, where it gets written or how far each
// replica advances. Quorum is the read path: its variables are the
// requested key, both gathered votes with their sequence numbers and
// the resolved winner, so a fault corrupts what a client read returns.
// Every few requests a sync barrier forces full catch-up and compares
// the three stores key by key — the replication invariant.
//
// The failure specification is replication-invariant violation against
// a golden run: divergent replica state after a barrier, a stale or
// wrong quorum read, or a lost acknowledged write (every primary apply
// is acknowledged into the outcome digest, and the final barrier folds
// the complete store contents, so an acknowledged write that is missing
// at the end changes the outcome).
//
// Role in the methodology: a Step 1 target system (fault injection
// analysis). Its campaigns produce the KV-* datasets mined into error
// detectors in Steps 2-4, demonstrating the pipeline on request-serving
// state. Like every target, System is a stateless value whose Run
// builds all mutable state per call, so campaign workers share one
// System across concurrent runs; it implements propane.Forkable for the
// golden-state forking fast path.
package kvstore

import (
	"fmt"

	"edem/internal/propane"
)

// Module names (dataset IDs KV-A* and KV-B*).
const (
	ModuleReplicate = "Replicate"
	ModuleQuorum    = "Quorum"
)

// System is the replicated KV store target. The zero value selects the
// documented defaults.
type System struct {
	// Keys is the key-space size (default 16).
	Keys int
	// Requests is the number of client requests per test case (default
	// 24). Each request performs one write (put or delete) through the
	// primary and one quorum read.
	Requests int
}

func (s System) keys() int {
	if s.Keys <= 0 {
		return 16
	}
	return s.Keys
}

func (s System) requests() int {
	if s.Requests <= 0 {
		return 24
	}
	return s.Requests
}

// syncEvery is the barrier cadence: after every syncEvery-th request
// the replicas are forced to full catch-up and the three stores are
// compared key by key.
const syncEvery = 6

// Name implements propane.Target.
func (System) Name() string { return "KVStore" }

// Modules implements propane.Target.
func (System) Modules() []propane.ModuleInfo {
	return []propane.ModuleInfo{
		{Name: ModuleReplicate, Vars: (&replicate{}).decls()},
		{Name: ModuleQuorum, Vars: (&quorum{}).decls()},
	}
}

// TestCases implements propane.Target: n deterministic workloads.
func (s System) TestCases(n int, seed uint64) []propane.TestCase {
	tcs := make([]propane.TestCase, n)
	for i := range tcs {
		tcs[i] = propane.TestCase{
			ID:   i,
			Seed: seed ^ (uint64(i+1) * 0xd1342543de82ef95),
			Params: map[string]float64{
				"keys":     float64(s.keys()),
				"requests": float64(s.requests()),
			},
		}
	}
	return tcs
}

// Outcome is the observable result of one run: the rolling digest of
// every acknowledged write, every quorum read and the final store
// contents, plus the replication-invariant counters.
type Outcome struct {
	Digest      uint64
	Divergences int32
	StaleReads  int32
}

// Failed implements propane.Target: any deviation from the golden
// outcome — a different read or ack stream, divergent replicas, a
// changed staleness profile — violates the failure specification.
func (System) Failed(_ propane.TestCase, golden, observed any) bool {
	g, ok1 := golden.(Outcome)
	o, ok2 := observed.(Outcome)
	if !ok1 || !ok2 {
		return true
	}
	return g != o
}

// replicate is the log-shipping module state: the variables live across
// the Entry visit (which corrupts what the primary is about to apply)
// and the Exit visit (which corrupts what ships to the replicas and
// what gets acknowledged).
type replicate struct {
	logSeq int64  // sequence number assigned to this request's op
	opKey  int64  // key being written
	opVal  uint64 // value being written (puts)
	opDel  bool   // whether the op is a delete
	lag1   int64  // replica 1 shipping lag, in log entries
	lag2   int64  // replica 2 shipping lag, in log entries
}

func (r *replicate) decls() []propane.VarDecl {
	refs := r.varRefs()
	decls := make([]propane.VarDecl, len(refs))
	for i, ref := range refs {
		decls[i] = propane.VarDecl{Name: ref.Name, Kind: ref.Kind}
	}
	return decls
}

func (r *replicate) varRefs() []propane.VarRef {
	return []propane.VarRef{
		propane.Int64Ref("logSeq", &r.logSeq),
		propane.Int64Ref("opKey", &r.opKey),
		propane.Uint64Ref("opVal", &r.opVal),
		propane.BoolRef("opDel", &r.opDel),
		propane.Int64Ref("lag1", &r.lag1),
		propane.Int64Ref("lag2", &r.lag2),
	}
}

// quorum is the read-path module state: the requested key, the two
// gathered votes and the resolved winner. stale accumulates across the
// whole run.
type quorum struct {
	readKey int64   // key the client asked for
	voteA   uint64  // primary's vote (value)
	voteB   uint64  // polled replica's vote (value)
	seqA    int64   // primary's vote sequence
	seqB    int64   // replica's vote sequence
	winVal  uint64  // resolved winner value
	winSeq  int64   // resolved winner sequence
	stale   int32   // runs of stale replica votes observed so far
	load    float64 // fraction of the key space present on the primary
	present bool    // whether the primary holds the requested key
}

func (q *quorum) decls() []propane.VarDecl {
	refs := q.varRefs()
	decls := make([]propane.VarDecl, len(refs))
	for i, ref := range refs {
		decls[i] = propane.VarDecl{Name: ref.Name, Kind: ref.Kind}
	}
	return decls
}

func (q *quorum) varRefs() []propane.VarRef {
	return []propane.VarRef{
		propane.Int64Ref("readKey", &q.readKey),
		propane.Uint64Ref("voteA", &q.voteA),
		propane.Uint64Ref("voteB", &q.voteB),
		propane.Int64Ref("seqA", &q.seqA),
		propane.Int64Ref("seqB", &q.seqB),
		propane.Uint64Ref("winVal", &q.winVal),
		propane.Int64Ref("winSeq", &q.winSeq),
		propane.Int32Ref("stale", &q.stale),
		propane.Float64Ref("load", &q.load),
		propane.BoolRef("present", &q.present),
	}
}

// op is one replication log entry.
type op struct {
	seq uint64
	key int
	val uint64
	del bool
}

// node is one store replica. Key space is bounded by maxKeys so nodes
// copy by value in Clone.
type node struct {
	val     [maxKeys]uint64
	seq     [maxKeys]uint64
	present [maxKeys]bool
}

// maxKeys bounds the configurable key space so node is a fixed-size
// value type.
const maxKeys = 64

func (n *node) apply(e op) {
	if e.del {
		n.present[e.key] = false
		n.val[e.key] = 0
	} else {
		n.present[e.key] = true
		n.val[e.key] = e.val
	}
	n.seq[e.key] = e.seq
}

// request is one pre-generated client request: a write (put or delete)
// plus a quorum read.
type request struct {
	del     bool
	key     int64
	val     uint64
	readKey int64
}

// Run implements propane.Target.
func (s System) Run(tc propane.TestCase, probe propane.Probe) (any, error) {
	return s.exec(s.newRunState(tc), probe, nil, -1, 0)
}

// runState is the complete resumable execution state of one run.
type runState struct {
	track int // current request index, 0-based
	phase int // next phase to execute within the request (see exec)

	rp replicate
	qu quorum

	nodes   [3]node // primary + 2 replicas
	log     []op    // replication log (primary appends, replicas apply)
	applied [3]int  // log entries applied per node (primary always len(log))

	divergences int32
	d0, d1      uint64

	// reqs is the generated workload, read-only for the whole run and
	// shared between clones.
	reqs []request
	keys int

	// Cached per-run VarRef slices (closures capture fields of this
	// struct, so they are rebuilt lazily per runState, never cloned).
	rpVars, quVars []propane.VarRef
}

const (
	digestBasis0 = 14695981039346656037
	digestBasis1 = 0x9e3779b97f4a7c15
	digestPrime  = 1099511628211
)

func (s System) newRunState(tc propane.TestCase) *runState {
	keys := s.keys()
	if keys > maxKeys {
		keys = maxKeys
	}
	return &runState{
		d0:   digestBasis0,
		d1:   digestBasis1,
		reqs: generateRequests(tc.Seed, s.requests(), keys),
		keys: keys,
	}
}

// generateRequests synthesises the deterministic workload: 3 in 4
// requests put a fresh value, 1 in 4 deletes, and every request reads
// one key through the quorum path.
func generateRequests(seed uint64, n, keys int) []request {
	s := seed
	reqs := make([]request, n)
	for i := range reqs {
		r := splitmix(&s)
		reqs[i] = request{
			del:     r%4 == 3,
			key:     int64((r >> 8) % uint64(keys)),
			val:     splitmix(&s),
			readKey: int64(splitmix(&s) % uint64(keys)),
		}
	}
	return reqs
}

func splitmix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fold mixes values into the rolling outcome digests.
func (r *runState) fold(vals ...uint64) {
	d0, d1 := r.d0, r.d1
	for _, v := range vals {
		d0 = (d0 ^ v) * digestPrime
		d1 = (d1 ^ (v + 0x9e3779b97f4a7c15)) * digestPrime
	}
	r.d0, r.d1 = d0, d1
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Clone implements propane.State. reqs is shared (read-only); the log
// is copied because both branches of a fork may append to it.
func (r *runState) Clone() propane.State {
	return &runState{
		track: r.track, phase: r.phase,
		rp: r.rp, qu: r.qu,
		nodes:       r.nodes,
		log:         append([]op(nil), r.log...),
		applied:     r.applied,
		divergences: r.divergences,
		d0:          r.d0, d1: r.d1,
		reqs: r.reqs,
		keys: r.keys,
	}
}

// Digest implements propane.State, fingerprinting every field that
// determines the remainder of the run. The workload is a pure function
// of the test case and is excluded.
func (r *runState) Digest() propane.Digest {
	h := propane.NewStateHasher()
	h.Int(r.track)
	h.Int(r.phase)
	h.Int64(r.rp.logSeq)
	h.Int64(r.rp.opKey)
	h.Uint64(r.rp.opVal)
	h.Bool(r.rp.opDel)
	h.Int64(r.rp.lag1)
	h.Int64(r.rp.lag2)
	h.Int64(r.qu.readKey)
	h.Uint64(r.qu.voteA)
	h.Uint64(r.qu.voteB)
	h.Int64(r.qu.seqA)
	h.Int64(r.qu.seqB)
	h.Uint64(r.qu.winVal)
	h.Int64(r.qu.winSeq)
	h.Int64(int64(r.qu.stale))
	h.Float64(r.qu.load)
	h.Bool(r.qu.present)
	for n := range r.nodes {
		nd := &r.nodes[n]
		for k := 0; k < r.keys; k++ {
			h.Uint64(nd.val[k])
			h.Uint64(nd.seq[k])
			h.Bool(nd.present[k])
		}
		h.Int(r.applied[n])
	}
	h.Int(len(r.log))
	for i := range r.log {
		e := &r.log[i]
		h.Uint64(e.seq)
		h.Int(e.key)
		h.Uint64(e.val)
		h.Bool(e.del)
	}
	h.Int64(int64(r.divergences))
	h.Uint64(r.d0)
	h.Uint64(r.d1)
	return h.Sum()
}

// refs returns the cached VarRef slices, building them on first use.
// Golden and snapshot runs pass NopProbe and never call this.
func (r *runState) refs() (rpVars, quVars []propane.VarRef) {
	if r.rpVars == nil {
		r.rpVars = r.rp.varRefs()
		r.quVars = r.qu.varRefs()
	}
	return r.rpVars, r.quVars
}

// normKey clamps a (possibly corrupted) key into the key space.
func (r *runState) normKey(k int64) int {
	keys := int64(r.keys)
	return int(((k % keys) + keys) % keys)
}

// Phase indices within one request. Each phase executes "everything up
// to and including the next instrumentation visit's work", so a
// snapshot taken at (track, phase) resumes with that phase's visit as
// the next visit issued.
const (
	phaseRepEntry = iota // Replicate Entry visit + primary apply/log append
	phaseRepExit         // Replicate Exit visit + log shipping + ack fold
	phaseQEntry          // Quorum Entry visit + quorum resolution
	phaseQExit           // Quorum Exit visit + read fold + sync barrier
)

// exec advances the run from st's position to completion, issuing probe
// visits in the canonical order. With stopTrack >= 0 it instead returns
// (nil, nil) the moment st reaches (stopTrack, stopPhase) — before that
// phase's visit — which is how Snapshot positions a state. ctl, when
// non-nil, is consulted at the end of every completed request.
func (s System) exec(st *runState, probe propane.Probe, ctl *propane.RunControl, stopTrack, stopPhase int) (any, error) {
	_, nop := probe.(propane.NopProbe)
	var rpVars, quVars []propane.VarRef
	if !nop {
		rpVars, quVars = st.refs()
	}
	step := 0
	for st.track < len(st.reqs) {
		i := st.track
		req := st.reqs[i]

		if st.phase == phaseRepEntry {
			if st.track == stopTrack && stopPhase == phaseRepEntry {
				return nil, nil
			}
			// --- Replicate: primary write for request i ---
			st.rp.logSeq = int64(len(st.log)) + 1
			st.rp.opKey = req.key
			st.rp.opVal = req.val
			st.rp.opDel = req.del
			st.rp.lag1 = int64((i + 1) % 3)
			st.rp.lag2 = int64((i + 2) % 3)
			if !nop {
				probe.Visit(ModuleReplicate, propane.Entry, rpVars)
			}
			// The primary applies whatever the (possibly corrupted)
			// module state now says and appends it to the log.
			e := op{
				seq: uint64(st.rp.logSeq),
				key: st.normKey(st.rp.opKey),
				val: st.rp.opVal,
				del: st.rp.opDel,
			}
			st.log = append(st.log, e)
			st.nodes[0].apply(e)
			st.applied[0] = len(st.log)
			st.phase = phaseRepExit
		}
		if st.phase == phaseRepExit {
			if st.track == stopTrack && stopPhase == phaseRepExit {
				return nil, nil
			}
			if !nop {
				probe.Visit(ModuleReplicate, propane.Exit, rpVars)
			}
			// Ship the log: each replica advances to len(log)-lag,
			// clamped so corrupted lags stall replication rather than
			// rewinding or overrunning it.
			st.ship(1, st.rp.lag1)
			st.ship(2, st.rp.lag2)
			// Acknowledge the write to the client: a later loss of this
			// update is a lost acknowledged write.
			st.fold(uint64(st.rp.logSeq), uint64(st.rp.opKey), st.rp.opVal, b2u(st.rp.opDel))
			st.phase = phaseQEntry
		}
		if st.phase == phaseQEntry {
			if st.track == stopTrack && stopPhase == phaseQEntry {
				return nil, nil
			}
			// --- Quorum: client read for request i ---
			key := st.normKey(req.readKey)
			voter := &st.nodes[1+i%2]
			st.qu.readKey = req.readKey
			st.qu.voteA = st.nodes[0].val[key]
			st.qu.seqA = int64(st.nodes[0].seq[key])
			st.qu.voteB = voter.val[key]
			st.qu.seqB = int64(voter.seq[key])
			st.qu.present = st.nodes[0].present[key]
			n := 0
			for k := 0; k < st.keys; k++ {
				if st.nodes[0].present[k] {
					n++
				}
			}
			st.qu.load = float64(n) / float64(st.keys)
			if !nop {
				probe.Visit(ModuleQuorum, propane.Entry, quVars)
			}
			// Resolve the quorum from the (possibly corrupted) votes:
			// highest sequence wins, primary breaks ties.
			if st.qu.seqA >= st.qu.seqB {
				st.qu.winVal, st.qu.winSeq = st.qu.voteA, st.qu.seqA
			} else {
				st.qu.winVal, st.qu.winSeq = st.qu.voteB, st.qu.seqB
			}
			if st.qu.seqB < st.qu.seqA {
				st.qu.stale++
			}
			st.phase = phaseQExit
		}
		if st.phase == phaseQExit {
			if st.track == stopTrack && stopPhase == phaseQExit {
				return nil, nil
			}
			if !nop {
				probe.Visit(ModuleQuorum, propane.Exit, quVars)
			}
			// The client observes the resolved read.
			st.fold(uint64(st.qu.readKey), st.qu.winVal, uint64(st.qu.winSeq),
				b2u(st.qu.present), uint64(st.qu.stale))
			// Sync barrier: force full catch-up, then demand identical
			// stores — the replication invariant.
			if (i+1)%syncEvery == 0 || i == len(st.reqs)-1 {
				st.barrier(i == len(st.reqs)-1)
			}
			st.phase = phaseRepEntry
			st.track++
			step++
			if ctl.Checkpoint(step, st) {
				return nil, propane.ErrConverged
			}
		}
	}
	return Outcome{Digest: st.d0, Divergences: st.divergences, StaleReads: st.qu.stale}, nil
}

// ship advances one replica along the log to len(log)-lag, clamped to
// [already applied, len(log)].
func (st *runState) ship(n int, lag int64) {
	target := len(st.log)
	if lag > 0 {
		if lag >= int64(target) {
			target = 0
		} else {
			target -= int(lag)
		}
	}
	if target < st.applied[n] {
		target = st.applied[n]
	}
	for ; st.applied[n] < target; st.applied[n]++ {
		st.nodes[n].apply(st.log[st.applied[n]])
	}
}

// barrier forces both replicas to full catch-up, compares the three
// stores key by key and folds the verdict (and, on the final barrier,
// the complete store contents) into the outcome digest.
func (st *runState) barrier(final bool) {
	st.ship(1, 0)
	st.ship(2, 0)
	diverged := false
	for n := 1; n < 3; n++ {
		for k := 0; k < st.keys; k++ {
			if st.nodes[n].val[k] != st.nodes[0].val[k] ||
				st.nodes[n].seq[k] != st.nodes[0].seq[k] ||
				st.nodes[n].present[k] != st.nodes[0].present[k] {
				diverged = true
			}
		}
	}
	if diverged {
		st.divergences++
	}
	st.fold(0xbeef, uint64(st.divergences), b2u(diverged))
	if final {
		for n := range st.nodes {
			for k := 0; k < st.keys; k++ {
				st.fold(st.nodes[n].val[k], st.nodes[n].seq[k], b2u(st.nodes[n].present[k]))
			}
		}
	}
}

var _ propane.Forkable = System{}

// Snapshot implements propane.Forkable: every module location activates
// exactly once per request, so the activation-th visit of (module, at)
// occurs on request activation-1 at a fixed phase.
func (s System) Snapshot(tc propane.TestCase, module string, at propane.Location, activation int) (propane.State, bool, error) {
	var phase int
	switch {
	case module == ModuleReplicate && at == propane.Entry:
		phase = phaseRepEntry
	case module == ModuleReplicate && at == propane.Exit:
		phase = phaseRepExit
	case module == ModuleQuorum && at == propane.Entry:
		phase = phaseQEntry
	case module == ModuleQuorum && at == propane.Exit:
		phase = phaseQExit
	default:
		return nil, false, nil
	}
	if activation < 1 || activation > s.requests() {
		return nil, false, nil
	}
	track := activation - 1
	st := s.newRunState(tc)
	if _, err := s.exec(st, propane.NopProbe{}, nil, track, phase); err != nil {
		return nil, false, err
	}
	if st.track != track || st.phase != phase {
		return nil, false, nil
	}
	return st, true, nil
}

// RunFrom implements propane.Forkable.
func (s System) RunFrom(st propane.State, probe propane.Probe, ctl *propane.RunControl) (any, error) {
	rs, ok := st.(*runState)
	if !ok {
		return nil, fmt.Errorf("kvstore: foreign state %T", st)
	}
	return s.exec(rs, probe, ctl, -1, 0)
}
