package kvstore_test

import (
	"context"
	"math"
	"testing"

	"edem/internal/bitflip"
	"edem/internal/core"
	"edem/internal/propane"
	"edem/internal/targets/kvstore"
)

func kvSpec(tcs int) propane.Spec {
	return propane.Spec{
		Dataset:        "KV-A2",
		Module:         kvstore.ModuleReplicate,
		InjectAt:       propane.Entry,
		SampleAt:       propane.Exit,
		InjectionTimes: []int{2, 8},
		TestCases:      tcs,
		Seed:           5,
		BitStride:      16,
	}
}

func sameRecords(t *testing.T, got, want []propane.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("record count %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		same := g.TestCase == w.TestCase && g.Var == w.Var && g.Bit == w.Bit &&
			g.InjectionTime == w.InjectionTime && g.Injected == w.Injected &&
			g.Sampled == w.Sampled && g.Failure == w.Failure &&
			g.Crashed == w.Crashed && g.FlipErr == w.FlipErr &&
			len(g.State) == len(w.State)
		if same {
			for k := range g.State {
				if math.Float64bits(g.State[k]) != math.Float64bits(w.State[k]) {
					same = false
					break
				}
			}
		}
		if !same {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

// TestGoldenInvariants: a fault-free run upholds the replication
// invariant — no divergent replicas, and the outcome equals itself
// under the failure spec.
func TestGoldenInvariants(t *testing.T) {
	s := kvstore.System{}
	for _, tc := range s.TestCases(4, 99) {
		out, err := s.Run(tc, propane.NopProbe{})
		if err != nil {
			t.Fatal(err)
		}
		oc, ok := out.(kvstore.Outcome)
		if !ok {
			t.Fatalf("outcome type %T", out)
		}
		if oc.Divergences != 0 {
			t.Errorf("tc %d: golden run diverged %d times", tc.ID, oc.Divergences)
		}
		if oc.Digest == 0 {
			t.Errorf("tc %d: degenerate digest", tc.ID)
		}
		if s.Failed(tc, out, out) {
			t.Errorf("tc %d: golden outcome fails against itself", tc.ID)
		}
	}
	// Distinct workloads produce distinct outcomes.
	tcs := s.TestCases(2, 7)
	a, _ := s.Run(tcs[0], propane.NopProbe{})
	b, _ := s.Run(tcs[1], propane.NopProbe{})
	if a == b {
		t.Error("two different workloads yielded identical outcomes")
	}
}

// TestRunDeterminism: repeated runs of the same test case are
// bit-identical, the precondition for golden-compare failure labels.
func TestRunDeterminism(t *testing.T) {
	s := kvstore.System{}
	tc := s.TestCases(1, 42)[0]
	a, err := s.Run(tc, propane.NopProbe{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(tc, propane.NopProbe{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("outcomes differ: %+v vs %+v", a, b)
	}
}

// TestCampaignProducesFailures: an injection campaign yields a
// non-degenerate label mix — some failures (replication-invariant
// violations) and some benign runs — for both modules.
func TestCampaignProducesFailures(t *testing.T) {
	for _, module := range []string{kvstore.ModuleReplicate, kvstore.ModuleQuorum} {
		spec := kvSpec(2)
		spec.Module = module
		camp, err := propane.Run(context.Background(), kvstore.System{}, spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(camp.Records) == 0 {
			t.Fatalf("%s: no records", module)
		}
		fails := camp.Failures()
		if fails == 0 || fails == len(camp.Records) {
			t.Errorf("%s: degenerate failure labels: %d/%d", module, fails, len(camp.Records))
		}
		if camp.Usable() == 0 {
			t.Errorf("%s: no usable records", module)
		}
	}
}

// TestForkEquivalence: the golden-state forking fast path is
// bit-identical to the slow path for every (inject, sample) pair and
// both modules.
func TestForkEquivalence(t *testing.T) {
	locs := []struct {
		name           string
		inject, sample propane.Location
	}{
		{"entry-entry", propane.Entry, propane.Entry},
		{"entry-exit", propane.Entry, propane.Exit},
		{"exit-exit", propane.Exit, propane.Exit},
	}
	for _, module := range []string{kvstore.ModuleReplicate, kvstore.ModuleQuorum} {
		for _, at := range locs {
			t.Run(module+"/"+at.name, func(t *testing.T) {
				spec := kvSpec(1)
				spec.Module = module
				spec.InjectAt, spec.SampleAt = at.inject, at.sample
				slow, err := propane.Run(context.Background(), kvstore.System{}, spec)
				if err != nil {
					t.Fatal(err)
				}
				spec.Fork = true
				fast, err := propane.Run(context.Background(), kvstore.System{}, spec)
				if err != nil {
					t.Fatal(err)
				}
				sameRecords(t, fast.Records, slow.Records)
			})
		}
	}
}

// TestBurstFork: the burst model also rides the fast path on this
// target, bit-identically.
func TestBurstFork(t *testing.T) {
	spec := kvSpec(1)
	spec.Fault = bitflip.Fault{Model: bitflip.Burst, Width: 3}
	slow, err := propane.Run(context.Background(), kvstore.System{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Fork = true
	fast, err := propane.Run(context.Background(), kvstore.System{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, fast.Records, slow.Records)
}

// TestCoreDatasetIDs: KV-* IDs resolve through the standard dataset
// grammar without joining the paper's published Table II list.
func TestCoreDatasetIDs(t *testing.T) {
	opts := core.DefaultOptions()
	for _, id := range []string{"KV-A1", "KV-A2", "KV-A3", "KV-B1", "KV-B2", "KV-B3"} {
		target, spec, err := core.SpecFor(id, opts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if target.Name() != "KVStore" || spec.Dataset != id {
			t.Errorf("%s resolved to %s/%s", id, target.Name(), spec.Dataset)
		}
	}
	if _, _, err := core.SpecFor("KV-C1", opts); err == nil {
		t.Error("KV-C1 resolved, want unknown module error")
	}
	ids := core.AllDatasetIDs()
	if len(ids) != 18 {
		t.Fatalf("AllDatasetIDs grew to %d; Table II must stay at the 18 published rows", len(ids))
	}
	for _, id := range ids {
		if id[:2] == "KV" {
			t.Errorf("KV dataset %s leaked into Table II", id)
		}
	}
}

// TestPipelineSmoke runs Steps 1-2 end to end on a KV dataset at tiny
// scale: campaign through the journaled engine, conversion to a mining
// dataset with a usable class mix.
func TestPipelineSmoke(t *testing.T) {
	opts := core.DefaultOptions()
	opts.TestCases = 2
	opts.BitStride = 16
	opts.Fork = true
	d, camp, err := core.BuildDataset(context.Background(), "KV-A2", opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() == 0 || len(d.Attrs) == 0 {
		t.Fatal("empty dataset")
	}
	if camp.Failures() == 0 {
		t.Fatal("no failures to mine")
	}
	classes := map[int]int{}
	for _, inst := range d.Instances {
		classes[inst.Class]++
	}
	if len(classes) < 2 {
		t.Fatalf("single-class dataset: %v", classes)
	}
}
