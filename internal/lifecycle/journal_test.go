package lifecycle

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"edem/internal/telemetry"
)

func TestFeedbackJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "feedback.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []FeedbackRecord{
		{UnixMS: 1, Detector: "a", Generation: 1, Alarm: true, Outcome: OutcomeTrueAlarm, Source: SourceOperator},
		{UnixMS: 2, Detector: "b", Alarm: false, Outcome: OutcomeBenign, Source: SourceGolden,
			State: EncodeState([]float64{1.5, math.NaN(), math.Inf(-1)}), Note: "note"},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, torn, err := ReadFeedback(path)
	if err != nil || torn != 0 {
		t.Fatalf("read: torn=%d err=%v", torn, err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	if got[0].Detector != "a" || got[1].Note != "note" {
		t.Fatalf("records mangled: %+v", got)
	}
	// Non-finite state survives bit-exactly.
	vals, err := DecodeState(got[1].State)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 1.5 || !math.IsNaN(vals[1]) || !math.IsInf(vals[2], -1) {
		t.Fatalf("state round-trip lost non-finite values: %v", vals)
	}
}

// TestJournalTornTail pins the crash contract: a half-written final
// line (a kill mid-append) is skipped and counted, every complete line
// before it survives.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "diffs.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(DiffRecord{Detector: "d", LiveGen: 1, CandGen: 2, Served: "live", Index: []int{i + 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the kill: append half a record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"detector":"d","live_gen":1,"ca`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, torn, err := ReadDiffs(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 1 {
		t.Fatalf("torn = %d, want 1", torn)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want the 3 complete ones", len(recs))
	}

	// Appends continue cleanly after the torn tail: the new record
	// starts on its own line... actually it continues the torn line —
	// which is exactly why readers must tolerate one lost record per
	// crash, and why the count stays at one.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(DiffRecord{Detector: "e", LiveGen: 3, CandGen: 4, Served: "live"}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, torn2, err := ReadDiffs(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn2 != 1 {
		t.Fatalf("torn after continued appends = %d, want still 1", torn2)
	}
}

func TestReadMissingJournal(t *testing.T) {
	recs, torn, err := ReadFeedback(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || torn != 0 || len(recs) != 0 {
		t.Fatalf("missing journal: recs=%v torn=%d err=%v, want empty", recs, torn, err)
	}
}

// TestAsyncJournalDrops pins the overflow contract: a full queue drops
// and counts instead of blocking.
func TestAsyncJournalDrops(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.New()
	m, err := NewMonitor(MonitorConfig{Dir: dir, DiffQueueDepth: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	// Far more disagreeing requests than the queue can hold; none may
	// block, and drops + journalled lines must account for all of them.
	const n = 500
	for i := 0; i < n; i++ {
		m.RecordShadow("d", "live", []bool{false}, []bool{true},
			[][]float64{{1}}, 1, 2, false)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ReadDiffs(filepath.Join(dir, DiffsName))
	if err != nil {
		t.Fatal(err)
	}
	drops := reg.Counter("lifecycle.journal_drops").Value()
	if int64(len(recs))+drops != n {
		t.Fatalf("journalled %d + dropped %d != %d submitted", len(recs), drops, n)
	}
	if len(recs) == 0 {
		t.Fatal("everything dropped: the writer never ran")
	}
}

// TestMonitorRollbackVerdict pins the canary rollback latch: below
// MinRequests no verdict, past it exactly one, and only while
// canaried.
func TestMonitorRollbackVerdict(t *testing.T) {
	m, err := NewMonitor(MonitorConfig{
		Dir: t.TempDir(), MinRequests: 10, MaxDisagreeRate: 0.5, Registry: telemetry.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Shadow-only disagreements never trigger, regardless of volume.
	for i := 0; i < 50; i++ {
		if rb, _ := m.RecordShadow("d", "live", []bool{false}, []bool{true}, nil, 1, 2, false); rb {
			t.Fatal("rollback verdict while not canaried")
		}
	}
	m.ResetWindow()

	fired := 0
	for i := 0; i < 50; i++ {
		rb, reason := m.RecordShadow("d", "candidate", []bool{false}, []bool{true}, nil, 1, 2, true)
		if rb {
			fired++
			if reason == "" {
				t.Fatal("rollback verdict with empty reason")
			}
			if w := m.Window(); w.Requests < 10 {
				t.Fatalf("verdict fired at %d requests, below MinRequests", w.Requests)
			}
		}
	}
	if fired != 1 {
		t.Fatalf("rollback verdict fired %d times, want exactly once (latched)", fired)
	}

	// A window reset re-arms the latch for the next candidate.
	m.ResetWindow()
	fired = 0
	for i := 0; i < 50; i++ {
		if rb, _ := m.RecordShadow("d", "candidate", []bool{false}, []bool{true}, nil, 1, 3, true); rb {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("rollback verdict after reset fired %d times, want once", fired)
	}
}
