package lifecycle

import (
	"bufio"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"

	"edem/internal/telemetry"
)

// Journal file names inside a lifecycle directory. Both files follow
// the campaign journal's scheme: append-only JSONL, one record per
// line, every append fsynced, and a line truncated by a kill
// mid-append simply fails to parse and is skipped on read (the torn
// tail).
const (
	// FeedbackName holds FeedbackRecord lines.
	FeedbackName = "feedback.jsonl"
	// DiffsName holds DiffRecord lines.
	DiffsName = "diffs.jsonl"
)

// Journal is one append-only fsynced JSONL file. Append is safe for
// concurrent use; Close exactly once after the last append.
type Journal struct {
	path string

	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (creating if needed) an append-only journal file,
// creating parent directories as required.
func OpenJournal(path string) (*Journal, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{path: path, f: f}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append marshals one record, appends it as a newline-terminated JSON
// line and fsyncs, so an acknowledged record survives any subsequent
// kill. Nil-safe: a nil journal absorbs appends (the disabled path).
func (j *Journal) Append(rec any) error {
	if j == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(data); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close closes the underlying file. Nil-safe.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// scanJournal reads every line of path, handing decodable lines to fn
// and counting undecodable ones (the torn tail of a killed append — or
// any hand-edited damage; either way the record is simply absent). A
// missing file is an empty journal, not an error.
func scanJournal(path string, fn func(line []byte) error) (torn int, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if !json.Valid(line) {
			torn++
			continue
		}
		if err := fn(line); err != nil {
			return torn, err
		}
	}
	return torn, sc.Err()
}

// ReadFeedback loads every decodable feedback record from path,
// reporting the number of torn (skipped) lines alongside.
func ReadFeedback(path string) (recs []FeedbackRecord, torn int, err error) {
	torn, err = scanJournal(path, func(line []byte) error {
		var r FeedbackRecord
		if err := json.Unmarshal(line, &r); err != nil {
			torn++
			return nil
		}
		recs = append(recs, r)
		return nil
	})
	return recs, torn, err
}

// ReadDiffs loads every decodable verdict-diff record from path,
// reporting the number of torn (skipped) lines alongside.
func ReadDiffs(path string) (recs []DiffRecord, torn int, err error) {
	torn, err = scanJournal(path, func(line []byte) error {
		var r DiffRecord
		if err := json.Unmarshal(line, &r); err != nil {
			torn++
			return nil
		}
		recs = append(recs, r)
		return nil
	})
	return recs, torn, err
}

// asyncJournal decouples journal appends from the serve request path:
// records queue into a bounded channel and a single writer goroutine
// performs the fsynced appends. When the queue is full the record is
// dropped and counted (lifecycle.journal_drops) — the serving hot path
// must never block on disk. Close drains the queue before returning.
type asyncJournal struct {
	j     *Journal
	ch    chan any
	drops *telemetry.Counter
	wg    sync.WaitGroup
	once  sync.Once
}

// newAsyncJournal starts the writer goroutine over j with the given
// queue depth.
func newAsyncJournal(j *Journal, depth int, drops *telemetry.Counter) *asyncJournal {
	if depth <= 0 {
		depth = 256
	}
	a := &asyncJournal{j: j, ch: make(chan any, depth), drops: drops}
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		for rec := range a.ch {
			// A failed append is operational data lost, not a serving
			// fault; count it with the drops.
			if err := j.Append(rec); err != nil {
				drops.Inc()
			}
		}
	}()
	return a
}

// append enqueues one record without blocking; a full queue drops it
// and bumps the drop counter.
func (a *asyncJournal) append(rec any) {
	select {
	case a.ch <- rec:
	default:
		a.drops.Inc()
	}
}

// close drains pending records, stops the writer and closes the file.
func (a *asyncJournal) close() error {
	a.once.Do(func() {
		close(a.ch)
	})
	a.wg.Wait()
	return a.j.Close()
}
