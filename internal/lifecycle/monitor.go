package lifecycle

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"edem/internal/telemetry"
)

// MonitorConfig tunes a Monitor. The zero value of every threshold
// selects the default documented on the field.
type MonitorConfig struct {
	// Dir is the lifecycle journal directory; feedback.jsonl and
	// diffs.jsonl are created inside it. Required.
	Dir string
	// MinRequests is the canary window size before the rollback verdict
	// is consulted (default 50 requests that dual-evaluated).
	MinRequests int64
	// MaxDisagreeRate is the fraction of dual-evaluated samples on which
	// the candidate may disagree with the live bundle before a canary is
	// rolled back (default 0.20).
	MaxDisagreeRate float64
	// MaxAlarmRegress is the absolute increase of the candidate's alarm
	// rate over the live bundle's, within the canary window, that
	// triggers rollback (default 0.10).
	MaxAlarmRegress float64
	// Drift tunes the drift comparator thresholds.
	Drift DriftConfig
	// DiffQueueDepth bounds the async verdict-diff writer queue
	// (default 256; overflow is dropped and counted).
	DiffQueueDepth int
	// Registry receives the lifecycle.* metrics; nil falls back to the
	// process default registry.
	Registry *telemetry.Registry
}

// WindowStats is the canary/shadow accounting window since the last
// reset (candidate load, promote or rollback).
type WindowStats struct {
	// Requests is the number of requests that dual-evaluated (live and
	// candidate both produced verdicts).
	Requests int64 `json:"requests"`
	// Samples is the number of dual-evaluated samples.
	Samples int64 `json:"samples"`
	// Disagreements is the number of samples on which the two bundles
	// disagreed.
	Disagreements int64 `json:"disagreements"`
	// LiveAlarms / CandAlarms are alarm counts over the dual-evaluated
	// samples, one per side.
	LiveAlarms int64 `json:"live_alarms"`
	CandAlarms int64 `json:"cand_alarms"`
	// CanaryRequests is how many of the requests were served from the
	// candidate.
	CanaryRequests int64 `json:"canary_requests"`
}

// DisagreeRate returns the per-sample disagreement fraction (0 before
// any dual-evaluated sample).
func (w WindowStats) DisagreeRate() float64 {
	if w.Samples == 0 {
		return 0
	}
	return float64(w.Disagreements) / float64(w.Samples)
}

// AlarmRegress returns candidate alarm rate minus live alarm rate over
// the window (positive = the candidate alarms more).
func (w WindowStats) AlarmRegress() float64 {
	if w.Samples == 0 {
		return 0
	}
	return (float64(w.CandAlarms) - float64(w.LiveAlarms)) / float64(w.Samples)
}

// Monitor owns the serving side of the lifecycle: the feedback and
// verdict-diff journals, the drift tracker, and the canary rollback
// window. The serving runtime calls Observe*/Record* from its request
// path (all nil-safe and non-blocking apart from feedback appends);
// the admin surface calls Status, Baseline and the window resets.
type Monitor struct {
	cfg      MonitorConfig
	feedback *Journal
	diffs    *asyncJournal
	tracker  *Tracker

	reqs        atomic.Int64
	samples     atomic.Int64
	disagrees   atomic.Int64
	liveAlarms  atomic.Int64
	candAlarms  atomic.Int64
	canaryReqs  atomic.Int64
	fbCount     atomic.Int64
	rolled      atomic.Bool // latched per candidate window; reset with it
	lastRollMu  sync.Mutex
	lastRoll    string

	mShadowEvals *telemetry.Counter
	mDisagree    *telemetry.Counter
	mCanaryReqs  *telemetry.Counter
	mFeedback    *telemetry.Counter
	mDrops       *telemetry.Counter
}

// NewMonitor opens (or continues) the journals under cfg.Dir and
// returns a monitor ready for the serving runtime.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("lifecycle: monitor needs a journal directory")
	}
	if cfg.MinRequests <= 0 {
		cfg.MinRequests = 50
	}
	if cfg.MaxDisagreeRate <= 0 {
		cfg.MaxDisagreeRate = 0.20
	}
	if cfg.MaxAlarmRegress <= 0 {
		cfg.MaxAlarmRegress = 0.10
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default()
	}
	fb, err := OpenJournal(filepath.Join(cfg.Dir, FeedbackName))
	if err != nil {
		return nil, err
	}
	dj, err := OpenJournal(filepath.Join(cfg.Dir, DiffsName))
	if err != nil {
		fb.Close()
		return nil, err
	}
	m := &Monitor{
		cfg:      cfg,
		feedback: fb,
		tracker:  NewTracker(cfg.Drift),

		mShadowEvals: cfg.Registry.Counter("lifecycle.shadow_evals"),
		mDisagree:    cfg.Registry.Counter("lifecycle.shadow_disagreements"),
		mCanaryReqs:  cfg.Registry.Counter("lifecycle.canary_requests"),
		mFeedback:    cfg.Registry.Counter("lifecycle.feedback_records"),
		mDrops:       cfg.Registry.Counter("lifecycle.journal_drops"),
	}
	m.diffs = newAsyncJournal(dj, cfg.DiffQueueDepth, m.mDrops)
	return m, nil
}

// Dir returns the journal directory.
func (m *Monitor) Dir() string { return m.cfg.Dir }

// Close drains the async diff writer and closes both journals.
func (m *Monitor) Close() error {
	if m == nil {
		return nil
	}
	err := m.diffs.close()
	if cerr := m.feedback.Close(); err == nil {
		err = cerr
	}
	return err
}

// ObserveLive feeds the drift tracker with one served batch: the
// samples' feature magnitudes and the verdicts' alarm rate. Nil-safe.
func (m *Monitor) ObserveLive(det string, samples [][]float64, verdicts []bool) {
	if m == nil {
		return
	}
	m.tracker.Observe(det, samples, verdicts)
}

// RecordFeedback validates and journals one feedback record (fsynced
// before returning — feedback is low-rate and an acknowledged label
// must survive a kill).
func (m *Monitor) RecordFeedback(rec FeedbackRecord) error {
	if m == nil {
		return fmt.Errorf("lifecycle: monitor disabled")
	}
	if rec.Detector == "" {
		return fmt.Errorf("lifecycle: feedback needs a detector")
	}
	if _, err := ParseOutcome(string(rec.Outcome)); err != nil {
		return err
	}
	if _, err := ParseSource(string(rec.Source)); err != nil {
		return err
	}
	if rec.UnixMS == 0 {
		rec.UnixMS = time.Now().UnixMilli()
	}
	if err := m.feedback.Append(rec); err != nil {
		return err
	}
	m.fbCount.Add(1)
	m.mFeedback.Inc()
	return nil
}

// RecordShadow accounts one dual-evaluated request: live and candidate
// verdicts over the same samples, which side was served, and the two
// bundle generations. Disagreements are journalled asynchronously.
// It returns rollback=true (exactly once per window) when the canary
// thresholds are crossed; the caller performs the actual rollback.
func (m *Monitor) RecordShadow(det string, served string, liveV, candV []bool,
	samples [][]float64, liveGen, candGen uint64, canaried bool) (rollback bool, reason string) {
	if m == nil || len(liveV) != len(candV) {
		return false, ""
	}
	m.reqs.Add(1)
	m.samples.Add(int64(len(liveV)))
	m.mShadowEvals.Add(int64(len(candV)))
	if canaried {
		m.canaryReqs.Add(1)
		m.mCanaryReqs.Inc()
	}
	var rec *DiffRecord
	for i := range liveV {
		if liveV[i] {
			m.liveAlarms.Add(1)
		}
		if candV[i] {
			m.candAlarms.Add(1)
		}
		if liveV[i] != candV[i] {
			m.disagrees.Add(1)
			m.mDisagree.Inc()
			if rec == nil {
				rec = &DiffRecord{
					UnixMS:   time.Now().UnixMilli(),
					Detector: det,
					LiveGen:  liveGen,
					CandGen:  candGen,
					Served:   served,
				}
			}
			rec.Index = append(rec.Index, i+1)
			rec.Live = append(rec.Live, liveV[i])
			if i < len(samples) {
				rec.State = append(rec.State, EncodeState(samples[i]))
			}
		}
	}
	if rec != nil {
		m.diffs.append(rec)
	}

	// Rollback verdict: only meaningful while a canary routes traffic,
	// and latched so one window triggers at most one rollback.
	if !canaried || m.rolled.Load() {
		return false, ""
	}
	w := m.Window()
	if w.Requests < m.cfg.MinRequests {
		return false, ""
	}
	switch {
	case w.DisagreeRate() > m.cfg.MaxDisagreeRate:
		reason = fmt.Sprintf("disagreement rate %.3f > %.3f over %d requests",
			w.DisagreeRate(), m.cfg.MaxDisagreeRate, w.Requests)
	case w.AlarmRegress() > m.cfg.MaxAlarmRegress:
		reason = fmt.Sprintf("alarm-rate regression %+.3f > %.3f over %d requests",
			w.AlarmRegress(), m.cfg.MaxAlarmRegress, w.Requests)
	default:
		return false, ""
	}
	if !m.rolled.CompareAndSwap(false, true) {
		return false, "" // another request raced us to the verdict
	}
	return true, reason
}

// Window snapshots the current shadow/canary accounting window.
func (m *Monitor) Window() WindowStats {
	if m == nil {
		return WindowStats{}
	}
	return WindowStats{
		Requests:       m.reqs.Load(),
		Samples:        m.samples.Load(),
		Disagreements:  m.disagrees.Load(),
		LiveAlarms:     m.liveAlarms.Load(),
		CandAlarms:     m.candAlarms.Load(),
		CanaryRequests: m.canaryReqs.Load(),
	}
}

// ResetWindow clears the shadow/canary window and the rollback latch —
// called on candidate load, promote and rollback, so each candidate
// epoch is judged on its own traffic.
func (m *Monitor) ResetWindow() {
	if m == nil {
		return
	}
	m.reqs.Store(0)
	m.samples.Store(0)
	m.disagrees.Store(0)
	m.liveAlarms.Store(0)
	m.candAlarms.Store(0)
	m.canaryReqs.Store(0)
	m.rolled.Store(false)
}

// NoteRollback records the reason of the latest rollback for Status.
func (m *Monitor) NoteRollback(reason string) {
	if m == nil {
		return
	}
	m.lastRollMu.Lock()
	m.lastRoll = reason
	m.lastRollMu.Unlock()
}

// Baseline freezes the drift tracker's current window as the baseline.
func (m *Monitor) Baseline() {
	if m == nil {
		return
	}
	m.tracker.Baseline()
}

// ResetDrift clears the drift tracker (a new live bundle generation
// starts with a clean history; re-baseline once it has seen
// known-good traffic).
func (m *Monitor) ResetDrift() {
	if m == nil {
		return
	}
	m.tracker.Reset()
}

// Drift returns the deterministic drift report (sorted by detector).
func (m *Monitor) Drift() []DriftRow {
	if m == nil {
		return nil
	}
	return m.tracker.Report()
}

// HasBaseline reports whether a drift baseline is frozen.
func (m *Monitor) HasBaseline() bool { return m != nil && m.tracker.HasBaseline() }

// FeedbackCount returns the feedback records journalled this process.
func (m *Monitor) FeedbackCount() int64 {
	if m == nil {
		return 0
	}
	return m.fbCount.Load()
}

// LastRollback returns the reason of the latest rollback ("" if none).
func (m *Monitor) LastRollback() string {
	if m == nil {
		return ""
	}
	m.lastRollMu.Lock()
	defer m.lastRollMu.Unlock()
	return m.lastRoll
}
