// Package lifecycle closes the methodology's refinement loop: where
// the paper's Table IV refinement is one-shot (campaign → mine →
// export → serve), this package feeds serving-time evidence back into
// refinement so detectors are re-learnt when production traffic stops
// matching the traffic they were learnt from.
//
// It contributes three mechanisms, all consumed by the serving runtime
// (internal/serve) and surfaced as `edem lifecycle` verbs:
//
//   - a feedback journal: operator-labelled or golden-run-confirmed
//     alarm outcomes (true alarm, false alarm, missed failure) appended
//     with the same fsynced, torn-tail-tolerant JSONL scheme as the
//     campaign journal (internal/campaign), plus a verdict-diff journal
//     recording every sample on which a candidate bundle disagreed with
//     the live one — the raw material of the next refinement run;
//   - drift detection: per-detector alarm rates and per-feature
//     magnitude distributions tracked in internal/telemetry's
//     power-of-two histograms, compared against a frozen baseline with
//     the deterministic telemetry.Distance comparator so a drift
//     verdict is reproducible from the same observations;
//   - canary accounting: disagreement and alarm-rate regression windows
//     for a candidate bundle under live traffic, with a threshold
//     verdict the serving runtime uses to roll a canary back
//     automatically.
//
// Role in the methodology: the loop edge from §VII-D deployment back
// to Step 1 — drifted or disagreeing detectors name the datasets to
// re-campaign and re-refine, and the journals record the evidence.
//
// Ownership and concurrency: a Monitor and a Tracker are safe for
// unrestricted concurrent use (atomic windows, mutex-guarded journal
// appends). A Journal serialises appends internally; Close it exactly
// once after its last writer is done. Records returned by readers are
// owned by the caller.
package lifecycle

import (
	"fmt"
	"math"
	"strconv"
)

// Source tells where a feedback label came from.
type Source string

const (
	// SourceOperator is a human operator labelling an alarm outcome.
	SourceOperator Source = "operator"
	// SourceGolden is an automated label confirmed by re-running the
	// sampled state against a golden (fault-free) reference.
	SourceGolden Source = "golden-run"
)

// ParseSource validates the wire spelling of a feedback source.
func ParseSource(s string) (Source, error) {
	switch Source(s) {
	case SourceOperator, SourceGolden:
		return Source(s), nil
	}
	return "", fmt.Errorf("lifecycle: unknown feedback source %q (want %q or %q)",
		s, SourceOperator, SourceGolden)
}

// Outcome is the ground-truth label attached to a served verdict.
type Outcome string

const (
	// OutcomeTrueAlarm confirms an alarm: the flagged state really
	// preceded a failure.
	OutcomeTrueAlarm Outcome = "true-alarm"
	// OutcomeFalseAlarm refutes an alarm: the flagged state was benign.
	OutcomeFalseAlarm Outcome = "false-alarm"
	// OutcomeMissedFailure records a failure the detector did not flag.
	OutcomeMissedFailure Outcome = "missed-failure"
	// OutcomeBenign confirms a non-alarm verdict as correct.
	OutcomeBenign Outcome = "benign"
)

// ParseOutcome validates the wire spelling of a feedback outcome.
func ParseOutcome(s string) (Outcome, error) {
	switch Outcome(s) {
	case OutcomeTrueAlarm, OutcomeFalseAlarm, OutcomeMissedFailure, OutcomeBenign:
		return Outcome(s), nil
	}
	return "", fmt.Errorf("lifecycle: unknown feedback outcome %q (want %q, %q, %q or %q)",
		s, OutcomeTrueAlarm, OutcomeFalseAlarm, OutcomeMissedFailure, OutcomeBenign)
}

// FeedbackRecord is one line of the feedback journal: a served verdict
// plus its ground-truth label. Sampled state travels as 16-digit hex
// IEEE-754 bit patterns (EncodeState), the campaign journal's exact
// NaN/±Inf-safe transport.
type FeedbackRecord struct {
	// UnixMS is the wall-clock label time in milliseconds (operational
	// metadata; nothing downstream depends on it).
	UnixMS int64 `json:"t_ms,omitempty"`
	// Detector is the bundle entry the verdict came from.
	Detector string `json:"detector"`
	// Generation is the bundle generation that served the verdict.
	Generation uint64 `json:"gen,omitempty"`
	// Alarm is the verdict being labelled.
	Alarm bool `json:"alarm"`
	// Outcome is the ground-truth label.
	Outcome Outcome `json:"outcome"`
	// Source tells where the label came from.
	Source Source `json:"source"`
	// State is the sampled state vector, hex-encoded (optional).
	State []string `json:"state,omitempty"`
	// Note is free-form operator context (optional).
	Note string `json:"note,omitempty"`
}

// DiffRecord is one line of the verdict-diff journal: the samples of
// one request on which the candidate bundle disagreed with the live
// one. Candidate verdicts are the negation of Live per entry, so only
// one side is stored.
type DiffRecord struct {
	// UnixMS is the wall-clock observation time in milliseconds.
	UnixMS int64 `json:"t_ms,omitempty"`
	// Detector is the bundle entry both sides evaluated.
	Detector string `json:"detector"`
	// LiveGen and CandGen identify the two bundle generations.
	LiveGen uint64 `json:"live_gen"`
	CandGen uint64 `json:"cand_gen"`
	// Served names which side's verdict the client saw: "live" or
	// "candidate" (the latter only while a canary routes traffic).
	Served string `json:"served"`
	// Index lists the 1-based disagreeing sample indices within the
	// request batch (matching EvalResponse.Alarms indexing).
	Index []int `json:"idx"`
	// Live holds the live bundle's verdict for each disagreeing sample.
	Live []bool `json:"live"`
	// State holds each disagreeing sample, hex-encoded.
	State [][]string `json:"state,omitempty"`
}

// EncodeState renders a state vector as 16-digit hex IEEE-754 bit
// patterns — the journal transport that round-trips NaN and ±Inf
// exactly (encoding/json rejects them as numbers).
func EncodeState(vals []float64) []string {
	if vals == nil {
		return nil
	}
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = strconv.FormatUint(math.Float64bits(v), 16)
	}
	return out
}

// DecodeState parses the EncodeState transport back into float64s.
func DecodeState(hex []string) ([]float64, error) {
	if hex == nil {
		return nil, nil
	}
	out := make([]float64, len(hex))
	for i, s := range hex {
		bits, err := strconv.ParseUint(s, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("lifecycle: bad state bits %q: %w", s, err)
		}
		out[i] = math.Float64frombits(bits)
	}
	return out, nil
}
