package lifecycle

import (
	"math"
	"testing"
)

// observeN feeds n copies of one sample/verdict pair.
func observeN(t *Tracker, det string, n int, sample []float64, verdict bool) {
	for i := 0; i < n; i++ {
		t.Observe(det, [][]float64{sample}, []bool{verdict})
	}
}

func findRow(t *testing.T, rows []DriftRow, det string) DriftRow {
	t.Helper()
	for _, r := range rows {
		if r.Detector == det {
			return r
		}
	}
	t.Fatalf("no row for detector %q in %+v", det, rows)
	return DriftRow{}
}

func TestFeatureKeyTotality(t *testing.T) {
	cases := []struct {
		v    float64
		want int64
	}{
		{math.NaN(), 1 << 62},
		{math.Inf(1), 1 << 60},
		{math.Inf(-1), 1 << 60},
		{0, 0},
		{math.Copysign(0, -1), 0},
		{1, 1 << 20},
		{-1, 1 << 20},    // sign dropped
		{2, 1 << 21},     // next power of two, next bucket
		{0.5, 1 << 19},   // previous power of two, previous bucket
		{1e-300, 1 << 0}, // clamped at the bottom
		{1e300, 1 << 58}, // clamped at the top
		{5e-324, 1 << 0}, // subnormal floor
		{1.75, 1 << 20},  // same magnitude class as 1
	}
	for _, c := range cases {
		if got := FeatureKey(c.v); got != c.want {
			t.Errorf("FeatureKey(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	// Non-finite classes are distinct from every finite class.
	if FeatureKey(math.NaN()) == FeatureKey(math.Inf(1)) {
		t.Error("NaN and Inf share a bucket")
	}
	if FeatureKey(math.Inf(1)) == FeatureKey(1e300) {
		t.Error("Inf and the largest finite class share a bucket")
	}
}

// TestDriftEmptyWindows pins the verdicts when one or both windows are
// empty: no baseline at all, a detector absent from the baseline (new),
// and a detector absent from the current window (missing).
func TestDriftEmptyWindows(t *testing.T) {
	tr := NewTracker(DriftConfig{MinEvals: 10})

	// No baseline frozen: everything is no-baseline.
	observeN(tr, "a", 20, []float64{1}, false)
	row := findRow(t, tr.Report(), "a")
	if row.Verdict != VerdictNoBaseline {
		t.Fatalf("pre-baseline verdict = %q, want %q", row.Verdict, VerdictNoBaseline)
	}

	tr.Baseline()

	// "a" has baseline mass but no current traffic: missing.
	row = findRow(t, tr.Report(), "a")
	if row.Verdict != VerdictMissing {
		t.Fatalf("missing-detector verdict = %q, want %q", row.Verdict, VerdictMissing)
	}

	// "b" exists only after the baseline (a candidate-only detector):
	// new, regardless of how much traffic it has.
	observeN(tr, "b", 50, []float64{1}, false)
	row = findRow(t, tr.Report(), "b")
	if row.Verdict != VerdictNew {
		t.Fatalf("new-detector verdict = %q, want %q", row.Verdict, VerdictNew)
	}

	// "a" with thin current traffic: insufficient, not drift — even
	// though its (empty-ish) distributions are far apart.
	observeN(tr, "a", 3, []float64{1e9}, true)
	row = findRow(t, tr.Report(), "a")
	if row.Verdict != VerdictInsufficient {
		t.Fatalf("thin-window verdict = %q, want %q", row.Verdict, VerdictInsufficient)
	}
}

// TestDriftSingleBucketMass pins the comparator on degenerate
// distributions whose whole mass sits in one bucket: identical buckets
// are zero distance, disjoint buckets are maximal distance.
func TestDriftSingleBucketMass(t *testing.T) {
	tr := NewTracker(DriftConfig{MinEvals: 10, MaxFeatureDistance: 0.5})
	observeN(tr, "same", 50, []float64{1}, false)
	observeN(tr, "moved", 50, []float64{1}, false)
	tr.Baseline()
	observeN(tr, "same", 50, []float64{1.5}, false) // same magnitude class
	observeN(tr, "moved", 50, []float64{1e6}, false)

	row := findRow(t, tr.Report(), "same")
	if row.Verdict != VerdictOK || row.FeatureDistance != 0 {
		t.Fatalf("same-bucket row = %+v, want ok at distance 0", row)
	}
	row = findRow(t, tr.Report(), "moved")
	if row.Verdict != VerdictFeatureDrift || row.FeatureDistance != 1 {
		t.Fatalf("moved-bucket row = %+v, want feature drift at distance 1", row)
	}
	if row.FeatureIndex != 0 {
		t.Fatalf("FeatureIndex = %d, want 0", row.FeatureIndex)
	}
}

// TestDriftNaNFeature pins NaN handling end to end: NaN mass appearing
// in a feature is a distribution shift like any other, not a crash or
// a silent drop.
func TestDriftNaNFeature(t *testing.T) {
	tr := NewTracker(DriftConfig{MinEvals: 10, MaxFeatureDistance: 0.3})
	observeN(tr, "d", 100, []float64{1, 2}, false)
	tr.Baseline()
	// Half the current window's second feature went NaN.
	observeN(tr, "d", 50, []float64{1, 2}, false)
	observeN(tr, "d", 50, []float64{1, math.NaN()}, false)

	row := findRow(t, tr.Report(), "d")
	if row.Verdict != VerdictFeatureDrift {
		t.Fatalf("NaN-mass verdict = %q (distance %.3f), want %q", row.Verdict, row.FeatureDistance, VerdictFeatureDrift)
	}
	if row.FeatureIndex != 1 {
		t.Fatalf("FeatureIndex = %d, want 1 (the NaN feature)", row.FeatureIndex)
	}
	if row.FeatureDistance != 0.5 {
		t.Fatalf("FeatureDistance = %v, want exactly 0.5 (half the mass moved)", row.FeatureDistance)
	}
}

// TestDriftAlarmRate pins the alarm-rate channel and the combined
// verdict.
func TestDriftAlarmRate(t *testing.T) {
	tr := NewTracker(DriftConfig{MinEvals: 10, MaxAlarmDelta: 0.2, MaxFeatureDistance: 0.5})
	observeN(tr, "d", 100, []float64{1}, false) // 0% alarms
	tr.Baseline()
	observeN(tr, "d", 50, []float64{1}, true) // 50% alarms, same feature class
	observeN(tr, "d", 50, []float64{1}, false)

	row := findRow(t, tr.Report(), "d")
	if row.Verdict != VerdictAlarmDrift {
		t.Fatalf("verdict = %q, want %q", row.Verdict, VerdictAlarmDrift)
	}
	if row.AlarmDelta != 0.5 {
		t.Fatalf("AlarmDelta = %v, want 0.5", row.AlarmDelta)
	}

	// Shift the features too: the combined verdict.
	observeN(tr, "d", 400, []float64{1e9}, true)
	row = findRow(t, tr.Report(), "d")
	if row.Verdict != VerdictBothDrift {
		t.Fatalf("verdict = %q, want %q", row.Verdict, VerdictBothDrift)
	}
}

// TestDriftReportDeterminism pins that Report is a pure function of the
// observations: same traffic, same rows, sorted by detector.
func TestDriftReportDeterminism(t *testing.T) {
	build := func() *Tracker {
		tr := NewTracker(DriftConfig{MinEvals: 5})
		observeN(tr, "b", 10, []float64{3, math.Inf(1)}, true)
		observeN(tr, "a", 10, []float64{1, 2}, false)
		tr.Baseline()
		observeN(tr, "b", 10, []float64{3, math.NaN()}, false)
		observeN(tr, "a", 10, []float64{1, 2}, false)
		return tr
	}
	r1, r2 := build().Report(), build().Report()
	if len(r1) != 2 || r1[0].Detector != "a" || r1[1].Detector != "b" {
		t.Fatalf("rows not sorted by detector: %+v", r1)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("row %d differs across identical runs:\n%+v\n%+v", i, r1[i], r2[i])
		}
	}
}

// TestTrackerReset pins that Reset drops both windows.
func TestTrackerReset(t *testing.T) {
	tr := NewTracker(DriftConfig{})
	observeN(tr, "d", 10, []float64{1}, false)
	tr.Baseline()
	observeN(tr, "d", 10, []float64{1}, false)
	tr.Reset()
	if tr.HasBaseline() {
		t.Fatal("baseline survived Reset")
	}
	if rows := tr.Report(); len(rows) != 0 {
		t.Fatalf("rows after Reset: %+v", rows)
	}
}
