package lifecycle

import (
	"math"
	"sort"
	"sync"

	"edem/internal/telemetry"
)

// FeatureKey maps one feature value to the non-negative int64 key
// whose telemetry power-of-two bucket represents the value's magnitude
// class. The mapping is total and deterministic — every float64,
// including the ones corrupted runs legitimately produce, has exactly
// one bucket:
//
//   - NaN        → bucket 63 (its own bucket: a NaN-mass shift is drift)
//   - ±Inf       → bucket 61
//   - 0 (and -0) → bucket 0
//   - finite v   → bucket clamp(ilogb(|v|)+21, 1, 59): one bucket per
//     power of two of |v| from 2^-20 up to 2^38, clamped beyond.
//
// Sign is deliberately dropped: the histograms track magnitude
// distributions, and a sign flip at equal magnitude shows up in the
// alarm-rate channel instead.
func FeatureKey(v float64) int64 {
	switch {
	case math.IsNaN(v):
		return 1 << 62
	case math.IsInf(v, 0):
		return 1 << 60
	case v == 0:
		return 0
	}
	b := math.Ilogb(math.Abs(v)) + 21
	if b < 1 {
		b = 1
	}
	if b > 59 {
		b = 59
	}
	return 1 << (b - 1)
}

// DriftConfig tunes the drift verdict thresholds. The zero value
// selects the defaults documented on each field.
type DriftConfig struct {
	// MinEvals is the per-detector evaluation count below which either
	// window is considered insufficient evidence (default 50).
	MinEvals int64
	// MaxAlarmDelta is the absolute alarm-rate change that constitutes
	// alarm-rate drift (default 0.10).
	MaxAlarmDelta float64
	// MaxFeatureDistance is the telemetry.Distance between baseline and
	// current feature distributions that constitutes feature drift
	// (default 0.25).
	MaxFeatureDistance float64
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.MinEvals <= 0 {
		c.MinEvals = 50
	}
	if c.MaxAlarmDelta <= 0 {
		c.MaxAlarmDelta = 0.10
	}
	if c.MaxFeatureDistance <= 0 {
		c.MaxFeatureDistance = 0.25
	}
	return c
}

// Drift verdict strings, ordered from benign to actionable. They are
// pure functions of the two windows and the DriftConfig, so the same
// observations always produce the same verdict.
const (
	// VerdictOK: both windows have evidence and neither channel drifted.
	VerdictOK = "ok"
	// VerdictInsufficient: either window is below MinEvals.
	VerdictInsufficient = "insufficient-data"
	// VerdictNoBaseline: no baseline window has been frozen yet.
	VerdictNoBaseline = "no-baseline"
	// VerdictNew: the detector has current traffic but no baseline
	// presence (e.g. it exists only in a freshly promoted bundle).
	VerdictNew = "new-detector"
	// VerdictMissing: the detector has baseline presence but no current
	// traffic at all.
	VerdictMissing = "missing-detector"
	// VerdictAlarmDrift: the alarm-rate delta crossed MaxAlarmDelta.
	VerdictAlarmDrift = "drift:alarm-rate"
	// VerdictFeatureDrift: a feature distribution moved past
	// MaxFeatureDistance.
	VerdictFeatureDrift = "drift:feature"
	// VerdictBothDrift: both channels drifted.
	VerdictBothDrift = "drift:alarm-rate+feature"
)

// DriftRow is one detector's drift comparison — one row of
// `edem lifecycle status`.
type DriftRow struct {
	Detector     string  `json:"detector"`
	BaseEvals    int64   `json:"base_evals"`
	CurEvals     int64   `json:"cur_evals"`
	BaseAlarmRate float64 `json:"base_alarm_rate"`
	CurAlarmRate  float64 `json:"cur_alarm_rate"`
	// AlarmDelta is |CurAlarmRate - BaseAlarmRate|.
	AlarmDelta float64 `json:"alarm_delta"`
	// FeatureDistance is the maximum telemetry.Distance across the
	// detector's feature histograms; FeatureIndex is the argmax feature
	// (-1 when no feature has evidence on both sides).
	FeatureDistance float64 `json:"feature_distance"`
	FeatureIndex    int     `json:"feature_index"`
	Verdict         string  `json:"verdict"`
}

// Drifted reports whether the row's verdict calls for re-refinement.
func (r DriftRow) Drifted() bool {
	switch r.Verdict {
	case VerdictAlarmDrift, VerdictFeatureDrift, VerdictBothDrift:
		return true
	}
	return false
}

// detWindow accumulates one detector's live-traffic evidence: eval and
// alarm counts plus one magnitude histogram per feature.
type detWindow struct {
	evals  *telemetry.Counter
	alarms *telemetry.Counter

	mu    sync.Mutex
	hists []*telemetry.Histogram // grown to the detector's arity on first observation
}

// frozenWindow is an immutable snapshot of a detWindow, the baseline
// side of every comparison.
type frozenWindow struct {
	evals   int64
	alarms  int64
	buckets [][]int64
}

// Tracker accumulates per-detector drift evidence and compares the
// current window against a frozen baseline. Observations are lock-free
// after a detector's first sample; Baseline and Report take the
// tracker lock.
type Tracker struct {
	cfg DriftConfig

	mu   sync.RWMutex
	cur  map[string]*detWindow
	base map[string]*frozenWindow
}

// NewTracker returns an empty tracker with the given thresholds.
func NewTracker(cfg DriftConfig) *Tracker {
	return &Tracker{
		cfg:  cfg.withDefaults(),
		cur:  make(map[string]*detWindow),
		base: make(map[string]*frozenWindow),
	}
}

func (t *Tracker) window(det string, arity int) *detWindow {
	t.mu.RLock()
	w := t.cur[det]
	t.mu.RUnlock()
	if w == nil {
		t.mu.Lock()
		if w = t.cur[det]; w == nil {
			w = &detWindow{evals: &telemetry.Counter{}, alarms: &telemetry.Counter{}}
			t.cur[det] = w
		}
		t.mu.Unlock()
	}
	if arity > 0 {
		w.mu.Lock()
		for len(w.hists) < arity {
			w.hists = append(w.hists, &telemetry.Histogram{})
		}
		w.mu.Unlock()
	}
	return w
}

// Observe records one evaluated batch for a detector: every sample's
// features feed the magnitude histograms, every verdict the alarm
// rate. Nil-safe: a nil tracker absorbs observations.
func (t *Tracker) Observe(det string, samples [][]float64, verdicts []bool) {
	if t == nil || len(samples) == 0 {
		return
	}
	arity := len(samples[0])
	w := t.window(det, arity)
	w.evals.Add(int64(len(samples)))
	for _, v := range verdicts {
		if v {
			w.alarms.Inc()
		}
	}
	// hists never shrinks and slots are stable once created, so reading
	// the slice header under the lock once is enough.
	w.mu.Lock()
	hists := w.hists
	w.mu.Unlock()
	for _, s := range samples {
		for i, v := range s {
			if i < len(hists) {
				hists[i].Observe(FeatureKey(v))
			}
		}
	}
}

// Baseline freezes the current window as the comparison baseline and
// resets the current window. Call it once the service has seen enough
// known-good traffic (or right after a promote, to re-anchor on the
// new bundle's behaviour).
func (t *Tracker) Baseline() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.base = make(map[string]*frozenWindow, len(t.cur))
	for det, w := range t.cur {
		fw := &frozenWindow{evals: w.evals.Value(), alarms: w.alarms.Value()}
		w.mu.Lock()
		for _, h := range w.hists {
			fw.buckets = append(fw.buckets, h.Buckets())
		}
		w.mu.Unlock()
		t.base[det] = fw
	}
	t.cur = make(map[string]*detWindow)
}

// HasBaseline reports whether Baseline has frozen a reference window.
func (t *Tracker) HasBaseline() bool {
	if t == nil {
		return false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.base) > 0
}

// Reset discards both windows (a new bundle generation starts with a
// clean drift history).
func (t *Tracker) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cur = make(map[string]*detWindow)
	t.base = make(map[string]*frozenWindow)
}

// Report compares the current window against the baseline for every
// detector either side has seen, in sorted detector order. The report
// is a pure function of the two windows and the thresholds: identical
// observations always yield identical rows.
func (t *Tracker) Report() []DriftRow {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()

	ids := make(map[string]bool, len(t.cur)+len(t.base))
	for det := range t.cur {
		ids[det] = true
	}
	for det := range t.base {
		ids[det] = true
	}
	dets := make([]string, 0, len(ids))
	for det := range ids {
		dets = append(dets, det)
	}
	sort.Strings(dets)

	noBaseline := len(t.base) == 0
	rows := make([]DriftRow, 0, len(dets))
	for _, det := range dets {
		row := DriftRow{Detector: det, FeatureIndex: -1}
		fw := t.base[det]
		w := t.cur[det]
		var curBuckets [][]int64
		if w != nil {
			row.CurEvals = w.evals.Value()
			if row.CurEvals > 0 {
				row.CurAlarmRate = float64(w.alarms.Value()) / float64(row.CurEvals)
			}
			w.mu.Lock()
			for _, h := range w.hists {
				curBuckets = append(curBuckets, h.Buckets())
			}
			w.mu.Unlock()
		}
		if fw != nil {
			row.BaseEvals = fw.evals
			if fw.evals > 0 {
				row.BaseAlarmRate = float64(fw.alarms) / float64(fw.evals)
			}
		}
		row.AlarmDelta = math.Abs(row.CurAlarmRate - row.BaseAlarmRate)

		// Feature distance: max over the features present on both sides;
		// a feature only one side ever observed contributes nothing here
		// (its mass shows up through the presence verdicts instead).
		if fw != nil {
			n := len(fw.buckets)
			if len(curBuckets) < n {
				n = len(curBuckets)
			}
			for i := 0; i < n; i++ {
				d := telemetry.Distance(fw.buckets[i], curBuckets[i])
				if d > row.FeatureDistance {
					row.FeatureDistance = d
					row.FeatureIndex = i
				}
			}
		}

		switch {
		case noBaseline:
			row.Verdict = VerdictNoBaseline
		case fw == nil:
			row.Verdict = VerdictNew
		case row.CurEvals == 0:
			row.Verdict = VerdictMissing
		case row.BaseEvals < t.cfg.MinEvals || row.CurEvals < t.cfg.MinEvals:
			row.Verdict = VerdictInsufficient
		default:
			alarmDrift := row.AlarmDelta > t.cfg.MaxAlarmDelta
			featDrift := row.FeatureDistance > t.cfg.MaxFeatureDistance
			switch {
			case alarmDrift && featDrift:
				row.Verdict = VerdictBothDrift
			case alarmDrift:
				row.Verdict = VerdictAlarmDrift
			case featDrift:
				row.Verdict = VerdictFeatureDrift
			default:
				row.Verdict = VerdictOK
			}
		}
		rows = append(rows, row)
	}
	return rows
}
