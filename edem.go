// Package edem is the public facade of the EDEM library — a Go
// implementation of "A Methodology for the Generation of Efficient
// Error Detection Mechanisms" (Leeke, Arif, Jhumka, Anand; DSN 2011).
//
// The methodology turns fault-injection data into error detection
// predicates in four steps (paper Figure 1):
//
//  1. Fault injection analysis — edem.Campaign runs a PROPANE-style
//     campaign against an instrumented target system.
//  2. Preprocessing — edem.Preprocess converts the campaign log into a
//     mining dataset (the PROPANE→ARFF transformation).
//  3. Model generation — edem.Baseline cross-validates a C4.5 decision
//     tree on the dataset (Table III).
//  4. Refinement — edem.Refine grid-searches sampling treatments
//     (undersampling, oversampling, SMOTE) for the best mean AUC
//     (Table IV); edem.RunMethodology does all four steps and extracts
//     the winning tree as a deployable predicate.
//
// The bundled target systems (7-Zip, FlightGear and Mp3Gain analogues)
// are selected through dataset IDs ("7Z-A1" … "MG-B3", Table II). Your
// own systems plug in by implementing the Target interface and calling
// RunCampaign; see examples/custom_target.
package edem

import (
	"context"
	"io"

	"edem/internal/bitflip"
	"edem/internal/campaign"
	"edem/internal/core"
	"edem/internal/dataset"
	"edem/internal/fabric"
	"edem/internal/lifecycle"
	"edem/internal/mining"
	"edem/internal/mining/eval"
	"edem/internal/mining/rules"
	"edem/internal/mining/tree"
	"edem/internal/parallel"
	"edem/internal/predicate"
	"edem/internal/propane"
	"edem/internal/serve"
	"edem/internal/telemetry"
)

// Re-exported core types. See the internal packages for full details:
// the facade keeps one import path for library consumers.
type (
	// Options scales and seeds the experiment suite.
	Options = core.Options
	// Row is one line of Table III / Table IV.
	Row = core.Row
	// Report is the full methodology output for one dataset.
	Report = core.Report
	// SamplingConfig is one refinement grid point.
	SamplingConfig = core.SamplingConfig
	// RefineResult is the Step 4 outcome.
	RefineResult = core.RefineResult
	// ValidationResult is the §VII-D re-validation outcome.
	ValidationResult = core.ValidationResult

	// Target is a system under fault injection.
	Target = propane.Target
	// Spec configures a campaign.
	Spec = propane.Spec
	// CampaignResult holds the injected-run records.
	CampaignResult = propane.Campaign
	// Probe receives instrumentation visits.
	Probe = propane.Probe
	// VarRef is a live reference to an instrumented variable.
	VarRef = propane.VarRef

	// Dataset is the mining data model.
	Dataset = dataset.Dataset
	// Predicate is a detector predicate in disjunctive normal form.
	Predicate = predicate.Predicate
	// Detector is a predicate installed as a runtime assertion.
	Detector = predicate.Detector
	// CVResult aggregates a stratified cross-validation.
	CVResult = eval.CVResult
)

// Sampling kinds for refinement configurations.
const (
	NoSampling    = core.NoSampling
	Undersampling = core.Undersampling
	Oversampling  = core.Oversampling
	Smote         = core.Smote
)

// DefaultOptions returns the laptop-scale defaults (all 18 datasets,
// every variable, strided bit coverage).
func DefaultOptions() Options { return core.DefaultOptions() }

// AllDatasetIDs lists the Table II dataset names.
func AllDatasetIDs() []string { return core.AllDatasetIDs() }

// Campaign runs Step 1 for a Table II dataset ID.
func Campaign(ctx context.Context, id string, opts Options) (*CampaignResult, error) {
	return core.Campaign(ctx, id, opts)
}

// RunCampaign runs Step 1 against a user-provided target system.
func RunCampaign(ctx context.Context, target Target, spec Spec) (*CampaignResult, error) {
	return propane.Run(ctx, target, spec)
}

// Preprocess runs Step 2: campaign log to mining dataset.
func Preprocess(ctx context.Context, c *CampaignResult) (*Dataset, error) {
	return core.Preprocess(ctx, c)
}

// Baseline runs Step 3: baseline C4.5 under stratified 10-fold CV.
func Baseline(ctx context.Context, d *Dataset, opts Options) (*CVResult, error) {
	return core.Baseline(ctx, d, opts)
}

// Refine runs Step 4 over a sampling grid.
func Refine(ctx context.Context, d *Dataset, grid []SamplingConfig, opts Options) (*RefineResult, error) {
	return core.Refine(ctx, d, grid, opts)
}

// RefineGrid returns the refinement search grid; full selects the
// paper-scale grid.
func RefineGrid(full bool) []SamplingConfig { return core.RefineGrid(full) }

// Resumable campaign engine types. The engine shards a campaign into
// journaled checkpoints so killed runs resume from the last checkpoint
// and persistently failing cells degrade to skip-and-record; see
// internal/campaign for the guarantees.
type (
	// CampaignConfig tunes the resumable campaign engine (journal
	// directory, resume, shard count, per-run timeout, retry policy).
	CampaignConfig = campaign.Config
	// CampaignOutcome is the engine result: the assembled records plus
	// resume accounting and any skipped cells.
	CampaignOutcome = campaign.Result
	// SkippedCell records one injection-space cell the engine gave up
	// on, with the reason.
	SkippedCell = campaign.SkippedCell
)

// RunResumableCampaign runs (or resumes) a journaled fault-injection
// campaign against a user-provided target system. With a zero Config it
// behaves like RunCampaign but adds timeout, retry and skip handling;
// with Config.Journal set, the run checkpoints and resumes. The records
// are bit-identical to an uninterrupted RunCampaign of the same spec.
func RunResumableCampaign(ctx context.Context, target Target, spec Spec, cfg CampaignConfig) (*CampaignOutcome, error) {
	return campaign.Run(ctx, target, spec, cfg)
}

// Campaign fabric types. The fabric distributes one campaign across
// machines: a coordinator owns the plan and journal and arbitrates
// time-bounded shard leases (with heartbeat renewal and work-stealing
// of stragglers); workers execute leased shards with the ordinary
// campaign engine and stream checkpoint lines back; the coordinator
// merges first-wins into a journal byte-identical to a local run's.
// See internal/fabric for the protocol and the lease state machine.
type (
	// FabricCoordinator owns a distributed campaign's plan and journal.
	FabricCoordinator = fabric.Coordinator
	// FabricCoordinatorConfig tunes lease TTL, per-shard steal fan-out
	// and drain behaviour.
	FabricCoordinatorConfig = fabric.CoordinatorConfig
	// FabricWorker leases and executes shards for a coordinator.
	FabricWorker = fabric.Worker
	// FabricWorkerConfig points a worker at its coordinator.
	FabricWorkerConfig = fabric.WorkerConfig
	// CampaignExecutor runs individual plan shards outside the
	// whole-campaign loop (the fabric worker's engine).
	CampaignExecutor = campaign.Executor
	// CampaignLedger merges checkpoint lines first-wins into a journal
	// (the fabric coordinator's authority).
	CampaignLedger = campaign.Ledger
)

// NewFabricCoordinator opens (or resumes) the journal for (target,
// spec) — ccfg.Journal must be set — and returns the coordinator ready
// to ListenAndServe. With ccfg.Incremental, a spec change invalidates
// only the shards whose test-case sections changed.
func NewFabricCoordinator(target Target, spec Spec, ccfg CampaignConfig, cfg FabricCoordinatorConfig) (*FabricCoordinator, error) {
	return fabric.NewCoordinator(target, spec, ccfg, cfg)
}

// NewFabricWorker verifies the local plan against the coordinator's
// and returns a worker ready to Run. The worker never touches disk:
// completed shards stream to the coordinator.
func NewFabricWorker(ctx context.Context, target Target, spec Spec, ccfg CampaignConfig, cfg FabricWorkerConfig) (*FabricWorker, error) {
	return fabric.NewWorker(ctx, target, spec, ccfg, cfg)
}

// SetWorkerBudget sets the process-wide worker budget shared by every
// parallel section (campaign runs, CV folds, refinement cells, table
// rows); n <= 0 restores the default of all cores. Results never depend
// on the budget — only wall-clock time does.
func SetWorkerBudget(n int) { parallel.SetBudget(n) }

// Telemetry types. A Metrics registry collects counters, gauges,
// histograms and phase-span aggregates from every instrumented pipeline
// stage; a MetricsSnapshot is its consistent point-in-time export.
type (
	// Metrics is a telemetry registry. The nil registry is valid and
	// absorbs all operations at near-zero cost (the disabled fast path).
	Metrics = telemetry.Registry
	// MetricsSnapshot is a JSON-serialisable registry export.
	MetricsSnapshot = telemetry.Snapshot
	// PhaseSpan measures one timed pipeline phase; see StartSpan.
	PhaseSpan = telemetry.Span
)

// NewMetrics returns a fresh, unattached registry — pass it through
// WithTelemetry to collect metrics for one experiment without touching
// the process default.
func NewMetrics() *Metrics { return telemetry.New() }

// EnableTelemetry installs a fresh process-default registry and returns
// it. Every pipeline stage that is not given a context-local registry
// via WithTelemetry reports into the process default.
func EnableTelemetry() *Metrics {
	r := telemetry.New()
	telemetry.SetDefault(r)
	return r
}

// DisableTelemetry removes the process-default registry, restoring the
// near-zero-overhead disabled path.
func DisableTelemetry() { telemetry.SetDefault(nil) }

// Telemetry returns the process-default registry, or nil when disabled.
func Telemetry() *Metrics { return telemetry.Default() }

// WithTelemetry attaches a registry to the context; pipeline stages
// called with the returned context report into r instead of the process
// default. Context-local registries isolate concurrent experiments.
func WithTelemetry(ctx context.Context, r *Metrics) context.Context {
	return telemetry.WithRegistry(ctx, r)
}

// StartSpan opens a named telemetry phase (nested under any phase
// already on ctx). Close it with span.End(); when telemetry is disabled
// it returns ctx unchanged and a nil (no-op) span.
func StartSpan(ctx context.Context, name string) (context.Context, *PhaseSpan) {
	return telemetry.StartSpan(ctx, name)
}

// RunMethodology executes Steps 1-4 for a dataset ID and extracts the
// detector predicate.
func RunMethodology(ctx context.Context, id string, grid []SamplingConfig, opts Options) (*Report, error) {
	return core.RunMethodology(ctx, id, grid, opts)
}

// ValidateDetector re-runs fault injection on a fresh workload with the
// predicate installed as a runtime assertion (§VII-D).
func ValidateDetector(ctx context.Context, id string, pred *Predicate, opts Options) (*ValidationResult, error) {
	return core.ValidateDetector(ctx, id, pred, opts)
}

// NewDetector wraps a predicate as a runtime assertion probe at the
// given module location.
func NewDetector(module string, loc propane.Location, pred *Predicate) *Detector {
	return predicate.NewDetector(module, loc, pred)
}

// WriteARFF serialises a dataset in the Weka ARFF format.
func WriteARFF(w io.Writer, d *Dataset) error { return dataset.WriteARFF(w, d) }

// ReadARFF parses an ARFF stream.
func ReadARFF(r io.Reader) (*Dataset, error) { return dataset.ReadARFF(r) }

// WriteLog serialises a campaign in the PROPANE log format.
func WriteLog(w io.Writer, c *CampaignResult) error { return propane.WriteLog(w, c) }

// ReadLog parses a PROPANE log stream.
func ReadLog(r io.Reader) (*CampaignResult, error) { return propane.ReadLog(r) }

// Instrumentation locations.
const (
	Entry = propane.Entry
	Exit  = propane.Exit
)

// Types needed to implement a custom Target.
type (
	// ModuleInfo describes one instrumented module.
	ModuleInfo = propane.ModuleInfo
	// VarDecl declares an instrumented variable.
	VarDecl = propane.VarDecl
	// TestCase is one workload configuration.
	TestCase = propane.TestCase
	// Location is an instrumentation point (Entry or Exit).
	Location = propane.Location
)

// Variable kinds for VarDecl.
const (
	Float64Kind = bitflip.Float64
	Float32Kind = bitflip.Float32
	Int64Kind   = bitflip.Int64
	Int32Kind   = bitflip.Int32
	Uint64Kind  = bitflip.Uint64
	BoolKind    = bitflip.Bool
)

// VarRef adapters for common Go types; targets build these once per run
// and pass them to every Probe.Visit.
var (
	Float64Ref = propane.Float64Ref
	Float32Ref = propane.Float32Ref
	Int64Ref   = propane.Int64Ref
	Int32Ref   = propane.Int32Ref
	IntRef     = propane.IntRef
	Uint64Ref  = propane.Uint64Ref
	BoolRef    = propane.BoolRef
)

// Fault selects the campaign's fault model (Spec.Fault / core.Options.
// Fault). The zero value is the classic transient single bit-flip and
// keeps plans, journals and ARFF output byte-identical to campaigns
// that predate the axis.
type Fault = bitflip.Fault

// FaultModel enumerates the supported fault models.
type FaultModel = bitflip.Model

// Fault models for Fault.Model.
const (
	Transient    = bitflip.Transient
	Burst        = bitflip.Burst
	StuckAt      = bitflip.StuckAt
	Intermittent = bitflip.Intermittent
)

// ParseFaultModel parses a fault-model name ("transient", "burst",
// "stuckat", "intermittent").
func ParseFaultModel(s string) (FaultModel, error) { return bitflip.ParseModel(s) }

// NopProbe ignores all instrumentation visits; use it for plain runs.
type NopProbe = propane.NopProbe

// Chain fans instrumentation visits out to several probes in order —
// for example an injector plus a deployed detector.
func Chain(probes ...Probe) Probe { return propane.Chain(probes...) }

// CrossValidate runs stratified k-fold cross-validation of any learner
// on a dataset; see internal/mining for the Learner interface. The ctx
// cancels fold evaluation and carries the telemetry registry, if any.
func CrossValidate(ctx context.Context, l mining.Learner, d *Dataset, cfg eval.CVConfig) (*CVResult, error) {
	return eval.CrossValidate(ctx, l, d, cfg)
}

// PredicateFromTree extracts the DNF detection predicate from an
// induced decision tree (paths to positiveClass leaves).
func PredicateFromTree(t *tree.Tree, positiveClass int, name string) (*Predicate, error) {
	return predicate.FromTree(t, positiveClass, name)
}

// C45 returns a C4.5 learner with the paper's default configuration.
func C45() tree.Learner { return tree.Learner{} }

// PredicateFromRules extracts a DNF predicate from a PRISM covering
// rule set — the paper's alternative symbolic learner (§V-C).
func PredicateFromRules(rs *rules.RuleSet, positiveClass int, vars []string, name string) (*Predicate, error) {
	return predicate.FromRules(rs, positiveClass, vars, name)
}

// SummarizeCampaign aggregates a campaign's outcomes per injected
// variable — the failure fingerprint the decision trees learn from.
func SummarizeCampaign(c *CampaignResult) []propane.VarStat { return propane.Summarize(c) }

// MeasureLatency traces failure-inducing runs with the predicate
// installed and reports detection latency in activations.
func MeasureLatency(ctx context.Context, id string, pred *Predicate, opts Options) (*core.LatencyResult, error) {
	return core.MeasureLatency(ctx, id, pred, opts)
}

// Detector-serving runtime types. The serving runtime deploys exported
// predicate bundles as a long-running HTTP service with admission
// control, per-detector circuit breaking, configurable fail-open/
// fail-closed degradation, hot reload and draining shutdown; see
// internal/serve for the robustness contract.
type (
	// DetectorBundle is the deployable artefact written by `edem export`:
	// learnt predicates tagged with the module/location they guard.
	DetectorBundle = serve.Bundle
	// DetectorBundleEntry is one deployable detector in a bundle.
	DetectorBundleEntry = serve.BundleEntry
	// ServeConfig tunes the serving runtime (queue depth, deadlines,
	// breaker thresholds, degradation policy, drain budget).
	ServeConfig = serve.Config
	// DetectorServer is the online serving runtime.
	DetectorServer = serve.Server
	// DetectorClient is the retrying client for the serving runtime.
	DetectorClient = serve.Client
	// StateSample is one state vector on the wire; NaN and ±Inf survive
	// JSON transport bit-exactly (hex-encoded IEEE-754).
	StateSample = serve.Sample
)

// Degradation policies for the serving runtime.
const (
	// FailClosed surfaces detector faults and open circuits as errors.
	FailClosed = serve.FailClosed
	// FailOpen returns empty degraded verdicts instead of errors.
	FailOpen = serve.FailOpen
)

// LoadDetectorBundle reads and validates a detector bundle file.
func LoadDetectorBundle(path string) (*DetectorBundle, error) { return serve.LoadBundle(path) }

// NewDetectorServer builds a serving runtime over a validated bundle.
// path is the bundle's file path, used for hot reload ("" disables
// path-based reload).
func NewDetectorServer(b *DetectorBundle, path string, cfg ServeConfig) (*DetectorServer, error) {
	return serve.NewServer(b, path, cfg)
}

// ServeCodec selects the wire format a DetectorClient speaks.
type ServeCodec = serve.Codec

// Wire formats for the serving runtime. JSON is the compatibility
// surface; the binary batch frame moves IEEE-754 bits verbatim in a
// columnar length-prefixed layout and is ~an order of magnitude faster
// end to end (see DESIGN.md §14).
const (
	CodecJSON   = serve.CodecJSON
	CodecBinary = serve.CodecBinary
)

// CompiledProgram is a predicate lowered to a flat threshold table —
// the allocation-free evaluation form the serving runtime runs.
type CompiledProgram = predicate.Program

// CompilePredicate lowers a DNF predicate into a CompiledProgram whose
// Eval is bit-identical to the interpreted Predicate.Eval. Predicates
// the compiler cannot represent exactly return an error; callers (like
// the serving runtime) fall back to the interpreter.
func CompilePredicate(p *Predicate) (*CompiledProgram, error) { return predicate.Compile(p) }

// Detector lifecycle types. The lifecycle closes the methodology's
// refinement loop at serving time: a feedback journal of labelled
// alarm outcomes, drift detection against a frozen baseline, and the
// shadow/canary accounting the serving runtime uses to promote a
// candidate bundle or roll it back automatically; see
// internal/lifecycle and DESIGN.md §16.
type (
	// LifecycleMonitor owns the serving-side lifecycle: journals, drift
	// tracker and the canary rollback window. Attach one through
	// ServeConfig.Monitor; a nil monitor disables all lifecycle hooks.
	LifecycleMonitor = lifecycle.Monitor
	// LifecycleMonitorConfig tunes the monitor (journal directory,
	// canary thresholds, drift thresholds).
	LifecycleMonitorConfig = lifecycle.MonitorConfig
	// DriftTracker accumulates per-detector alarm-rate and
	// feature-distribution evidence and compares it against a baseline.
	DriftTracker = lifecycle.Tracker
	// DriftConfig tunes the drift comparator thresholds.
	DriftConfig = lifecycle.DriftConfig
	// DriftRow is one detector's drift report row.
	DriftRow = lifecycle.DriftRow
	// FeedbackRecord is one labelled alarm outcome in the feedback
	// journal.
	FeedbackRecord = lifecycle.FeedbackRecord
	// VerdictDiffRecord is one journalled live-vs-candidate
	// disagreement.
	VerdictDiffRecord = lifecycle.DiffRecord
	// LifecycleWindow is the shadow/canary accounting window.
	LifecycleWindow = lifecycle.WindowStats
)

// NewLifecycleMonitor opens (or continues) the lifecycle journals under
// cfg.Dir and returns a monitor ready for ServeConfig.Monitor. Close it
// after the server drains.
func NewLifecycleMonitor(cfg LifecycleMonitorConfig) (*LifecycleMonitor, error) {
	return lifecycle.NewMonitor(cfg)
}

// ReadFeedbackJournal loads every decodable feedback record from a
// feedback.jsonl file, also reporting how many torn lines were skipped.
func ReadFeedbackJournal(path string) (recs []FeedbackRecord, torn int, err error) {
	return lifecycle.ReadFeedback(path)
}

// ReadVerdictDiffJournal loads every decodable verdict-diff record from
// a diffs.jsonl file, also reporting how many torn lines were skipped.
func ReadVerdictDiffJournal(path string) (recs []VerdictDiffRecord, torn int, err error) {
	return lifecycle.ReadDiffs(path)
}

// WriteCSV serialises a dataset as CSV (header row, class column last).
func WriteCSV(w io.Writer, d *Dataset) error { return dataset.WriteCSV(w, d) }

// ReadCSV parses a CSV stream with inferred column types.
func ReadCSV(r io.Reader, name string) (*Dataset, error) { return dataset.ReadCSV(r, name) }
