module edem

go 1.22
