// Benchmark harness: one benchmark per paper table and figure, plus the
// ablations called out in DESIGN.md §6. Each benchmark regenerates the
// corresponding artefact and reports the headline quantities through
// b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation at laptop scale. Set
// EDEM_BENCH_SCALE=paper for campaign sizes closer to the paper's
// (every bit position, more test cases); the default keeps the full
// 18-dataset sweep in the minutes range.
package edem

import (
	"context"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"edem/internal/bitflip"
	"edem/internal/campaign"
	"edem/internal/core"
	"edem/internal/dataset"
	"edem/internal/fabric"
	"edem/internal/mining"
	"edem/internal/mining/bayes"
	"edem/internal/mining/costs"
	"edem/internal/mining/eval"
	"edem/internal/mining/knn"
	"edem/internal/mining/logreg"
	"edem/internal/mining/rules"
	"edem/internal/mining/sampling"
	"edem/internal/mining/tree"
	"edem/internal/predicate"
	"edem/internal/propane"
	"edem/internal/serve"
	"edem/internal/stats"
	"edem/internal/telemetry"
)

// benchOpts returns the campaign scale used by the benchmarks.
func benchOpts() core.Options {
	opts := core.DefaultOptions()
	if os.Getenv("EDEM_BENCH_SCALE") == "paper" {
		opts.BitStride = 1
		opts.TestCases = 25
		return opts
	}
	// Laptop scale: fewer workloads, strided low mantissa bits. The
	// dense sign/exponent coverage is kept (see propane.BitPlan).
	opts.TestCases = 6
	opts.BitStride = 4
	return opts
}

// datasetCache builds each fault-injection dataset once per process; the
// campaigns are deterministic so sharing them across benchmarks only
// removes redundant work.
var datasetCache sync.Map // id -> *dataset.Dataset

func benchDataset(b *testing.B, id string) *dataset.Dataset {
	b.Helper()
	if d, ok := datasetCache.Load(id); ok {
		return d.(*dataset.Dataset)
	}
	d, _, err := core.BuildDataset(context.Background(), id, benchOpts())
	if err != nil {
		b.Fatalf("build dataset %s: %v", id, err)
	}
	datasetCache.Store(id, d)
	return d
}

// -----------------------------------------------------------------------------
// Table I — confusion matrix metrics (definitional micro-benchmark).

func BenchmarkTable1_ConfusionMetrics(b *testing.B) {
	cm := eval.NewConfusionMatrix([]string{"nonfailure", "failure"})
	for i := 0; i < 1000; i++ {
		_ = cm.Record(i%2, (i/3)%2, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bin := cm.Binary(1)
		_ = bin.TPR()
		_ = bin.FPR()
		_ = bin.AUC()
		_ = bin.F1()
		_ = bin.GeometricMean()
		_ = bin.DistanceFromPerfect()
	}
}

// -----------------------------------------------------------------------------
// Table II — the 18 fault-injection campaigns.

func BenchmarkTable2_CampaignGeneration(b *testing.B) {
	opts := benchOpts()
	for _, id := range core.AllDatasetIDs() {
		id := id
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				camp, err := core.Campaign(context.Background(), id, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(camp.Usable()), "instances")
				b.ReportMetric(float64(camp.Failures()), "failures")
			}
		})
	}
}

// -----------------------------------------------------------------------------
// Table III — baseline decision tree induction (no sampling).

func BenchmarkTable3_BaselineInduction(b *testing.B) {
	opts := benchOpts()
	for _, id := range core.AllDatasetIDs() {
		id := id
		b.Run(id, func(b *testing.B) {
			d := benchDataset(b, id)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cv, err := core.Baseline(context.Background(), d, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(cv.MeanTPR, "TPR")
				b.ReportMetric(cv.MeanFPR, "FPR")
				b.ReportMetric(cv.MeanAUC, "AUC")
				b.ReportMetric(cv.MeanComp, "nodes")
			}
		})
	}
}

// -----------------------------------------------------------------------------
// Table IV — model refinement over the sampling grid.

func BenchmarkTable4_Refinement(b *testing.B) {
	opts := benchOpts()
	grid := core.RefineGrid(false)
	for _, id := range core.AllDatasetIDs() {
		id := id
		b.Run(id, func(b *testing.B) {
			d := benchDataset(b, id)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ref, err := core.Refine(context.Background(), d, grid, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(ref.BestCV.MeanTPR, "TPR")
				b.ReportMetric(ref.BestCV.MeanFPR, "FPR")
				b.ReportMetric(ref.BestCV.MeanAUC, "AUC")
				b.ReportMetric(ref.BestCV.MeanComp, "nodes")
			}
		})
	}
}

// -----------------------------------------------------------------------------
// Figure 2 — decision tree induction and predicate extraction.

func BenchmarkFigure2_TreeToPredicate(b *testing.B) {
	d := benchDataset(b, "FG-A2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := core.DefaultLearner().FitTree(d)
		if err != nil {
			b.Fatal(err)
		}
		pred, err := predicate.FromTree(t, eval.PositiveClass, "FG-A2")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(t.Size()), "nodes")
		b.ReportMetric(float64(pred.Complexity()), "atoms")
	}
}

// -----------------------------------------------------------------------------
// §VII-D — deployed-detector re-validation.

func BenchmarkValidation_DeployedDetector(b *testing.B) {
	opts := benchOpts()
	d := benchDataset(b, "MG-B1")
	t, err := core.DefaultLearner().FitTree(d)
	if err != nil {
		b.Fatal(err)
	}
	pred, err := predicate.FromTree(t, eval.PositiveClass, "MG-B1")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		val, err := core.ValidateDetector(context.Background(), "MG-B1", pred, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(val.Counts.TPR(), "TPR")
		b.ReportMetric(val.Counts.FPR(), "FPR")
	}
}

// -----------------------------------------------------------------------------
// Ablation: gain ratio vs plain information gain (DESIGN.md §6).

func BenchmarkAblation_SplitCriterion(b *testing.B) {
	d := benchDataset(b, "7Z-B1")
	for _, tt := range []struct {
		name string
		cfg  tree.Config
	}{
		{"gain-ratio", tree.Config{}},
		{"plain-gain", tree.Config{PlainGain: true}},
	} {
		tt := tt
		b.Run(tt.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cv, err := eval.CrossValidate(context.Background(), tree.Learner{Config: tt.cfg}, d, eval.CVConfig{Folds: 10, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(cv.MeanAUC, "AUC")
				b.ReportMetric(cv.MeanComp, "nodes")
			}
		})
	}
}

// Ablation: pessimistic pruning on/off and confidence-factor sweep.

func BenchmarkAblation_Pruning(b *testing.B) {
	d := benchDataset(b, "FG-B1")
	configs := []struct {
		name string
		cfg  tree.Config
	}{
		{"pruned-cf0.25", tree.Config{}},
		{"pruned-cf0.10", tree.Config{ConfidenceFactor: 0.10}},
		{"pruned-cf0.40", tree.Config{ConfidenceFactor: 0.40}},
		{"unpruned", tree.Config{NoPrune: true}},
	}
	for _, tt := range configs {
		tt := tt
		b.Run(tt.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cv, err := eval.CrossValidate(context.Background(), tree.Learner{Config: tt.cfg}, d, eval.CVConfig{Folds: 10, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(cv.MeanAUC, "AUC")
				b.ReportMetric(cv.MeanComp, "nodes")
			}
		})
	}
}

// Ablation: SMOTE interpolation vs oversampling with replacement (q=0).

func BenchmarkAblation_SMOTEvsReplacement(b *testing.B) {
	d := benchDataset(b, "FG-B1")
	transforms := []struct {
		name string
		tf   eval.TrainTransform
	}{
		{"smote-500-k5", func(t *dataset.Dataset, rng *stats.RNG) (*dataset.Dataset, error) {
			return sampling.SMOTE(t, eval.PositiveClass, 500, 5, rng)
		}},
		{"replacement-500", func(t *dataset.Dataset, rng *stats.RNG) (*dataset.Dataset, error) {
			return sampling.Oversample(t, eval.PositiveClass, 500, rng)
		}},
	}
	for _, tt := range transforms {
		tt := tt
		b.Run(tt.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cv, err := eval.CrossValidate(context.Background(), tree.Learner{}, d, eval.CVConfig{Folds: 10, Seed: 1, Transform: tt.tf})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(cv.MeanAUC, "AUC")
				b.ReportMetric(cv.MeanTPR, "TPR")
			}
		})
	}
}

// Ablation: learner comparison on identical folds — supports the
// paper's choice of symbolic learners for detector predicates.

func BenchmarkAblation_LearnerComparison(b *testing.B) {
	d := benchDataset(b, "MG-A1")
	learners := []mining.Learner{
		tree.Learner{},
		costs.CostSensitiveLearner{Base: tree.Learner{}, Costs: costs.FalseNegativePenalty(10)},
		bayes.Learner{},
		bayes.Learner{LogMap: true},
		logreg.Learner{},
		rules.ZeroR{},
		rules.OneR{},
		rules.PRISM{},
		knn.Learner{K: 3},
	}
	for _, l := range learners {
		l := l
		b.Run(l.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cv, err := eval.CrossValidate(context.Background(), l, d, eval.CVConfig{Folds: 5, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(cv.MeanAUC, "AUC")
				b.ReportMetric(cv.MeanTPR, "TPR")
				b.ReportMetric(cv.MeanFPR, "FPR")
			}
		})
	}
}

// Micro-benchmarks of the hot paths: induction, sampling, prediction.

func BenchmarkMicro_C45Induction(b *testing.B) {
	d := benchDataset(b, "FG-A2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DefaultLearner().FitTree(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_SMOTE(b *testing.B) {
	d := benchDataset(b, "FG-B1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampling.SMOTE(d, eval.PositiveClass, 300, 5, stats.NewRNG(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_PredicateEval(b *testing.B) {
	d := benchDataset(b, "FG-A2")
	t, err := core.DefaultLearner().FitTree(d)
	if err != nil {
		b.Fatal(err)
	}
	pred, err := predicate.FromTree(t, eval.PositiveClass, "bench")
	if err != nil {
		b.Fatal(err)
	}
	states := make([][]float64, 0, 256)
	for i := 0; i < 256 && i < d.Len(); i++ {
		states = append(states, d.Instances[i].Values)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pred.Eval(states[i%len(states)])
	}
}

func sinkTable(rows []core.Row) string { return core.FormatTable("bench", rows) }

// BenchmarkTables_EndToEnd regenerates Table III rows end to end
// (campaign + preprocessing + cross-validation) for one dataset per
// target system — the full per-row cost of the harness.
func BenchmarkTables_EndToEnd(b *testing.B) {
	opts := benchOpts()
	for _, id := range []string{"7Z-A1", "FG-B1", "MG-B1"} {
		id := id
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row, err := core.Table3Row(context.Background(), id, opts)
				if err != nil {
					b.Fatal(err)
				}
				_ = sinkTable([]core.Row{row})
				b.ReportMetric(row.AUC, "AUC")
			}
		})
	}
}

// Worker-scaling benchmarks for the three re-plumbed layers. Results
// are bit-identical at every worker count (see DESIGN.md §8); on a
// multi-core machine workers=0 (the full budget) should beat workers=1
// roughly linearly until the fold/cell count saturates.

func BenchmarkMicro_CrossValidate(b *testing.B) {
	d := benchDataset(b, "FG-A2")
	for _, w := range []int{1, 0} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := eval.CVConfig{Folds: 10, Seed: 1, Workers: w}
				if _, err := eval.CrossValidate(context.Background(), tree.Learner{}, d, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRefine_Workers(b *testing.B) {
	grid := core.RefineGrid(false)
	d := benchDataset(b, "MG-B1")
	for _, w := range []int{1, 0} {
		opts := benchOpts()
		opts.Workers = w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Refine(context.Background(), d, grid, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTables_ParallelRows measures the dataset-row fan-out added
// on top of the per-row parallelism: three Table III rows generated
// concurrently on the shared budget.
// syntheticGridDataset is a deterministic imbalanced campaign-log
// stand-in for the refinement-grid benchmarks: numeric module state
// with an ~8% failure minority, large enough that per-cell clone and
// re-sort costs dominate the grid's wall clock.
func syntheticGridDataset(n int, seed uint64) *dataset.Dataset {
	attrs := make([]dataset.Attribute, 8)
	for i := range attrs {
		attrs[i] = dataset.NumericAttr(fmt.Sprintf("v%d", i))
	}
	d := dataset.New("grid-bench", attrs, []string{"nonfailure", "failure"})
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		vs := make([]float64, len(attrs))
		for a := range vs {
			vs[a] = rng.Float64() * 100
		}
		class := 0
		if vs[0] > 92 || (vs[1] > 95 && vs[2] > 40) {
			class = 1
		}
		d.MustAdd(dataset.Instance{Values: vs, Class: class, Weight: 1})
	}
	return d
}

// BenchmarkRefineGrid is the end-to-end Step 4 kernel: the full reduced
// sampling grid (20 configurations + baseline × 10 folds) over a
// synthetic campaign log. This is the headline number for the
// fold-shared columnar store; scripts/bench.sh records ns/op and
// allocs/op into BENCH_refine.json.
func BenchmarkRefineGrid(b *testing.B) {
	d := syntheticGridDataset(2000, 11)
	grid := core.RefineGrid(false)
	for _, w := range []int{1, 0} {
		opts := core.DefaultOptions()
		opts.Workers = w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Refine(context.Background(), d, grid, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCampaign measures the resumable campaign engine against the
// single-shot reference path on one mid-sized campaign (7Z-B2, chosen
// over the former MG-A1 grid because its solid-archive decode repeats
// the longest shared prefix per cell — the workload class the fork fast
// path exists for): propane is the baseline, engine adds sharding/retry
// bookkeeping, journaled adds checkpoint writes, forked runs the engine
// with golden-state forking and convergence memoization, and replay
// resumes a complete journal — the cost of rebuilding the dataset with
// zero target runs. Every sub-benchmark reports end-to-end throughput
// in runs/s; the engine-vs-propane gap is the fault-tolerance overhead,
// the forked-vs-engine ratio is the fork speedup (target ≥10×) and the
// replay-vs-journaled gap is the resume saving (EXPERIMENTS.md).
func BenchmarkCampaign(b *testing.B) {
	opts := benchOpts()
	target, spec, err := core.SpecFor("7Z-B2", opts)
	if err != nil {
		b.Fatal(err)
	}
	plan := len(spec.Jobs(mustModule(b, target, spec.Module)))
	report := func(b *testing.B) {
		b.ReportMetric(float64(plan*b.N)/b.Elapsed().Seconds(), "runs/s")
	}

	b.Run("propane", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := propane.Run(context.Background(), target, spec); err != nil {
				b.Fatal(err)
			}
		}
		report(b)
	})
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := campaign.Run(context.Background(), target, spec, campaign.Config{}); err != nil {
				b.Fatal(err)
			}
		}
		report(b)
	})
	b.Run("forked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := campaign.Run(context.Background(), target, spec, campaign.Config{Fork: true})
			if err != nil {
				b.Fatal(err)
			}
			if res.Fork.Forked == 0 {
				b.Fatal("fork fast path did not engage")
			}
		}
		report(b)
	})
	b.Run("journaled", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			cfg := campaign.Config{Journal: filepath.Join(dir, fmt.Sprint(i))}
			if _, err := campaign.Run(context.Background(), target, spec, cfg); err != nil {
				b.Fatal(err)
			}
		}
		report(b)
	})
	b.Run("replay", func(b *testing.B) {
		cfg := campaign.Config{Journal: filepath.Join(b.TempDir(), "journal")}
		if _, err := campaign.Run(context.Background(), target, spec, cfg); err != nil {
			b.Fatal(err)
		}
		cfg.Resume = true
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := campaign.Run(context.Background(), target, spec, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.ShardsRun != 0 {
				b.Fatalf("replay executed %d shards", res.ShardsRun)
			}
		}
		report(b)
	})
}

func mustModule(b *testing.B, target propane.Target, name string) propane.ModuleInfo {
	b.Helper()
	mod, ok := propane.Module(target, name)
	if !ok {
		b.Fatalf("module %q not found", name)
	}
	return mod
}

func BenchmarkTables_ParallelRows(b *testing.B) {
	opts := benchOpts()
	ids := []string{"7Z-A1", "FG-B1", "MG-B1"}
	for i := 0; i < b.N; i++ {
		if _, err := core.Table3Rows(context.Background(), ids, opts, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: learnt predicate vs the golden-range executable assertion
// (the specification-derived detector family of paper §II-A).
func BenchmarkAblation_RangeCheckEA(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		cmp, err := core.CompareWithRangeCheckEA(context.Background(), "MG-B1", 0.05, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.RangeCheck.AUC(), "EA-AUC")
		b.ReportMetric(cmp.Learned.AUC(), "learned-AUC")
	}
}

// BenchmarkTelemetryOverhead quantifies the cost of the telemetry layer
// around the hot tree-induction loop in its three states: no telemetry
// calls at all, the instrumented code path with telemetry disabled (the
// nil-registry fast path every library consumer pays), and a live
// registry. The disabled path is required to stay within 2% of the
// uninstrumented baseline; EXPERIMENTS.md records the measurements.
func BenchmarkTelemetryOverhead(b *testing.B) {
	d := benchDataset(b, "FG-A2")
	induce := func(b *testing.B) {
		if _, err := core.DefaultLearner().FitTree(d); err != nil {
			b.Fatal(err)
		}
	}
	// instrumented mirrors the pipeline's per-unit pattern: hoisted
	// metric handles, a span around the work, a histogram observation
	// and a counter increment per iteration.
	instrumented := func(b *testing.B, ctx context.Context) {
		reg := telemetry.FromContext(ctx)
		trees := reg.Counter("bench.trees_induced")
		fitNS := reg.Histogram("bench.fit_ns")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, span := telemetry.StartSpan(ctx, "fit")
			induce(b)
			fitNS.Observe(int64(span.End()))
			trees.Inc()
		}
	}
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			induce(b)
		}
	})
	b.Run("disabled", func(b *testing.B) {
		telemetry.SetDefault(nil)
		instrumented(b, context.Background())
	})
	b.Run("enabled", func(b *testing.B) {
		reg := telemetry.New()
		instrumented(b, telemetry.WithRegistry(context.Background(), reg))
	})
}

// latencyTarget models an out-of-process target system: each run costs
// a fixed wall-clock wait (subprocess exec, IPC, device I/O) rather
// than CPU. Fabric scaling is measured against this class because
// adding workers overlaps waiting, not compute — the shape of the
// multi-machine deployment the fabric exists for, where every worker
// brings its own CPUs and the coordinator only merges lines.
type latencyTarget struct{ delay time.Duration }

func (latencyTarget) Name() string { return "LatencyFake" }

func (latencyTarget) Modules() []propane.ModuleInfo {
	return []propane.ModuleInfo{{
		Name: "M",
		Vars: []propane.VarDecl{
			{Name: "x", Kind: bitflip.Float64},
			{Name: "ok", Kind: bitflip.Bool},
		},
	}}
}

func (latencyTarget) TestCases(n int, seed uint64) []propane.TestCase {
	tcs := make([]propane.TestCase, n)
	for i := range tcs {
		tcs[i] = propane.TestCase{ID: i, Seed: seed + uint64(i)}
	}
	return tcs
}

func (l latencyTarget) Run(tc propane.TestCase, probe propane.Probe) (any, error) {
	time.Sleep(l.delay)
	x := float64(tc.ID) + 1
	ok := true
	vars := []propane.VarRef{
		propane.Float64Ref("x", &x),
		propane.BoolRef("ok", &ok),
	}
	probe.Visit("M", propane.Entry, vars)
	x *= 2
	probe.Visit("M", propane.Exit, vars)
	if !ok {
		panic("latencyTarget: guard corrupted")
	}
	return x, nil
}

func (latencyTarget) Failed(_ propane.TestCase, golden, observed any) bool {
	g, o := golden.(float64), observed.(float64)
	return g != o && !(math.IsNaN(g) && math.IsNaN(o))
}

// BenchmarkFabric measures distributed-campaign throughput with 1, 2
// and 4 in-process workers against a loopback coordinator, on a
// latency-bound synthetic target (1ms per run). Each iteration is a
// complete fabric campaign, but only the lease/execute/merge phase is
// timed — journal setup, golden preparation and coordinator drain are
// per-campaign fixed costs, not the steady state that scales with
// workers. The headline metric is runs/s; the workers=2 over workers=1
// ratio is the scaling acceptance figure (target >=1.8x on any
// machine, since sleeping runs overlap regardless of core count).
func BenchmarkFabric(b *testing.B) {
	target := latencyTarget{delay: time.Millisecond}
	spec := propane.Spec{
		Dataset:        "FAB-L1",
		Module:         "M",
		InjectAt:       propane.Entry,
		SampleAt:       propane.Exit,
		InjectionTimes: []int{1},
		TestCases:      4,
		Seed:           7,
		BitStride:      4,
		Workers:        8, // parallel golden prep; shard cells stay sequential
	}
	jobs := len(spec.Jobs(mustModule(b, target, spec.Module)))
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runFabricCampaign(b, target, spec, workers)
			}
			b.ReportMetric(float64(jobs*b.N)/b.Elapsed().Seconds(), "runs/s")
		})
	}
}

// runFabricCampaign drives one full coordinator + n-worker campaign
// over loopback HTTP, timing only the worker run phase, and fails the
// benchmark on any error.
func runFabricCampaign(b *testing.B, target propane.Target, spec propane.Spec, workers int) {
	b.Helper()
	b.StopTimer()
	co, err := fabric.NewCoordinator(target, spec,
		campaign.Config{Journal: filepath.Join(b.TempDir(), "journal"), Shards: 8},
		fabric.CoordinatorConfig{
			LeaseTTL: 5 * time.Second,
			// No stealing: a stolen shard still executing when the last
			// real shard commits would outlive the lingering
			// coordinator. Scaling, not straggler racing, is what this
			// benchmark measures.
			MaxLeases: 1,
			// Linger then only needs to cover one worker poll interval;
			// it is a fixed cost on every iteration, so keep it short.
			Linger:   10 * time.Millisecond,
			Registry: telemetry.New(),
		})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- co.Serve(ctx, ln) }()

	ws := make([]*fabric.Worker, workers)
	for i := range ws {
		w, err := fabric.NewWorker(ctx, target, spec, campaign.Config{}, fabric.WorkerConfig{
			Coordinator: "http://" + ln.Addr().String(),
			Name:        fmt.Sprintf("bench-%d", i),
			Poll:        time.Millisecond,
			Retry:       serve.Backoff{MaxRetries: 5, Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
			Registry:    telemetry.New(),
		})
		if err != nil {
			b.Fatal(err)
		}
		ws[i] = w
	}

	b.StartTimer()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w *fabric.Worker) {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}(i, w)
	}
	wg.Wait()
	b.StopTimer()
	for i, err := range errs {
		if err != nil {
			b.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := <-serveErr; err != nil {
		b.Fatal(err)
	}
	b.StartTimer()
}
