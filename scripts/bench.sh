#!/usr/bin/env sh
# bench.sh — run the refinement-grid perf benchmarks and emit a
# machine-readable snapshot, so the perf trajectory is comparable
# PR-over-PR.
#
# Usage:
#   scripts/bench.sh            # writes BENCH_refine.json in the repo root
#   BENCHTIME=3x scripts/bench.sh
#   OUT=/tmp/bench.json scripts/bench.sh
#
# The benchmark set covers the grid end-to-end (BenchmarkRefineGrid,
# serial + budgeted workers) plus the micro kernels it is built from
# (C4.5 induction, SMOTE, cross-validation).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_refine.json}"
PATTERN='BenchmarkRefineGrid|BenchmarkMicro_C45Induction|BenchmarkMicro_SMOTE|BenchmarkMicro_CrossValidate'

RAW="$(go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -benchmem . 2>&1)"
printf '%s\n' "$RAW"

printf '%s\n' "$RAW" | awk -v benchtime="$BENCHTIME" '
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ && /ns\/op/ {
    name = $1
    iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    row = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                  name, iters, ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs)
    rows = rows == "" ? row : rows ",\n" row
}
END {
    if (rows == "") { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    print "{"
    print "  \"generated_by\": \"scripts/bench.sh\","
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    print "  \"benchmarks\": ["
    print rows
    print "  ]"
    print "}"
}' > "$OUT"

echo "wrote $OUT"
