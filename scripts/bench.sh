#!/usr/bin/env sh
# bench.sh — run the perf benchmark suites and emit machine-readable
# snapshots, so the perf trajectory is comparable PR-over-PR.
#
# Usage:
#   scripts/bench.sh            # writes BENCH_refine.json + BENCH_campaign.json + BENCH_serve.json
#   BENCHTIME=3x scripts/bench.sh
#   OUT=/tmp/refine.json CAMPAIGN_OUT=/tmp/campaign.json SERVE_OUT=/tmp/serve.json scripts/bench.sh
#
# BENCH_refine.json covers the refinement grid end-to-end
# (BenchmarkRefineGrid, serial + budgeted workers) plus the micro
# kernels it is built from (C4.5 induction, SMOTE, cross-validation).
# BENCH_campaign.json covers the resumable campaign engine
# (BenchmarkCampaign: bare propane reference, engine overhead,
# journaled checkpointing, and journal replay = resume overhead).
# BENCH_fabric.json covers the distributed campaign fabric
# (BenchmarkFabric: one coordinator plus 1/2/4 in-process workers over
# loopback on a latency-bound synthetic target — the workers=2 over
# workers=1 runs/s ratio is the scaling figure, target >=1.8x).
# BENCH_serve.json covers the serving runtime via `edem bench-serve`:
# latency percentiles, throughput and shed rate for every codec ×
# evaluation-mode leg (json/binary × interpreted/compiled) against a
# bundle exported from a real methodology run.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"

# run_suite PATTERN OUT — run one benchmark set and convert the output
# into a JSON snapshot at OUT.
run_suite() {
    PATTERN="$1"
    SUITE_OUT="$2"

    RAW="$(go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -benchmem . 2>&1)"
    printf '%s\n' "$RAW"

    printf '%s\n' "$RAW" | awk -v benchtime="$BENCHTIME" '
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ && /ns\/op/ {
    name = $1
    iters = $2
    ns = ""; bytes = ""; allocs = ""; runs = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
        if ($(i + 1) == "runs/s") runs = $i
    }
    row = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"runs_per_sec\": %s}",
                  name, iters, ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs, runs == "" ? "null" : runs)
    rows = rows == "" ? row : rows ",\n" row
}
END {
    if (rows == "") { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    print "{"
    print "  \"generated_by\": \"scripts/bench.sh\","
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    print "  \"benchmarks\": ["
    print rows
    print "  ]"
    print "}"
}' > "$SUITE_OUT"

    echo "wrote $SUITE_OUT"
}

run_suite 'BenchmarkRefineGrid|BenchmarkMicro_C45Induction|BenchmarkMicro_SMOTE|BenchmarkMicro_CrossValidate' "${OUT:-BENCH_refine.json}"
run_suite 'BenchmarkCampaign/' "${CAMPAIGN_OUT:-BENCH_campaign.json}"
run_suite 'BenchmarkFabric/' "${FABRIC_OUT:-BENCH_fabric.json}"

# Serving suite: export a real detector bundle, then drive the load
# harness. SERVE_DURATION tunes the per-leg measurement window.
TMPDIR_SERVE="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_SERVE"' EXIT
go build -o "$TMPDIR_SERVE/edem" ./cmd/edem
"$TMPDIR_SERVE/edem" export -dataset MG-A1 -scale 2 -stride 16 \
    -out "$TMPDIR_SERVE/bundle.json"
"$TMPDIR_SERVE/edem" bench-serve -bundle "$TMPDIR_SERVE/bundle.json" \
    -shadow \
    -out "${SERVE_OUT:-BENCH_serve.json}" \
    -duration "${SERVE_DURATION:-3s}"
echo "wrote ${SERVE_OUT:-BENCH_serve.json}"
